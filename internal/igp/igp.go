// Package igp computes intra-domain routing for one AS: an OSPF-like
// link-state shortest-path-first over the AS's routers, with equal-cost
// multipath, and installs the resulting connected/IGP routes into every
// router's FIB. The SPF result is also the substrate LDP builds LSPs from
// (labels congruent with the IGP, as the paper assumes for LDP tunnels).
package igp

import (
	"container/heap"
	"fmt"
	"math"

	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/router"
)

// Domain is one IGP area: the routers of a single AS.
type Domain struct {
	Routers []*router.Router

	// Metric returns the cost of a link; nil means every link costs 1
	// (hop-count SPF, the common default in the studied networks).
	Metric func(l *netsim.Link) int

	// InstallOn, when non-nil, restricts route installation to the listed
	// routers: SPF still runs over the whole domain (the Result covers
	// every router), but only these FIBs change. Churn uses it to model
	// fast-reroute at a failed link's endpoints before the rest of the
	// domain reconverges — the window where micro-loops and transient
	// blackholes live.
	InstallOn []*router.Router
}

// Hop is one first-hop alternative toward a prefix.
type Hop struct {
	Out     *netsim.Iface
	Gateway netaddr.Addr   // remote interface address; zero for connected
	Via     *router.Router // next-hop router; nil for connected routes
}

// Result is the computed SPF state, consumed by the LDP builder and tests.
type Result struct {
	// Prefixes lists every internal prefix (connected subnets, loopbacks,
	// and border subnets facing other ASes or hosts).
	Prefixes []netaddr.Prefix
	// Owners maps a prefix to the in-domain routers directly attached to it.
	Owners map[netaddr.Prefix][]*router.Router
	// NextHops[r][p] holds r's equal-cost first hops toward p.
	NextHops map[*router.Router]map[netaddr.Prefix][]Hop
	// Dist[a][b] is the SPF distance between two routers (math.MaxInt32 if
	// disconnected).
	Dist map[*router.Router]map[*router.Router]int
}

// Remap rewrites every router and interface pointer in the result through
// the given mapping functions, returning a new Result for a structural
// snapshot of the network (gen.Internet.Snapshot). Prefixes and distances
// are values and copy straight across.
//
// All hop and owner slices in the copy are carved from two slabs sized by
// a counting pass: the result holds one slice per (router, prefix) pair,
// and cloning each individually is thousands of small allocations that
// would dominate snapshot time.
func (res *Result) Remap(rmap func(*router.Router) *router.Router, imap func(*netsim.Iface) *netsim.Iface) *Result {
	var nOwners, nHops int
	for _, owners := range res.Owners {
		nOwners += len(owners)
	}
	for _, byPrefix := range res.NextHops {
		for _, hops := range byPrefix {
			nHops += len(hops)
		}
	}
	ownerSlab := make([]*router.Router, 0, nOwners)
	hopSlab := make([]Hop, 0, nHops)
	out := &Result{
		Prefixes: append([]netaddr.Prefix(nil), res.Prefixes...),
		Owners:   make(map[netaddr.Prefix][]*router.Router, len(res.Owners)),
		NextHops: make(map[*router.Router]map[netaddr.Prefix][]Hop, len(res.NextHops)),
		Dist:     make(map[*router.Router]map[*router.Router]int, len(res.Dist)),
	}
	for p, owners := range res.Owners {
		start := len(ownerSlab)
		for _, o := range owners {
			ownerSlab = append(ownerSlab, rmap(o))
		}
		out.Owners[p] = ownerSlab[start:len(ownerSlab):len(ownerSlab)]
	}
	for r, byPrefix := range res.NextHops {
		nm := make(map[netaddr.Prefix][]Hop, len(byPrefix))
		for p, hops := range byPrefix {
			start := len(hopSlab)
			for _, h := range hops {
				nh := Hop{Out: imap(h.Out), Gateway: h.Gateway}
				if h.Via != nil {
					nh.Via = rmap(h.Via)
				}
				hopSlab = append(hopSlab, nh)
			}
			nm[p] = hopSlab[start:len(hopSlab):len(hopSlab)]
		}
		out.NextHops[rmap(r)] = nm
	}
	for a, dd := range res.Dist {
		nd := make(map[*router.Router]int, len(dd))
		for b, v := range dd {
			nd[rmap(b)] = v
		}
		out.Dist[rmap(a)] = nd
	}
	return out
}

// adjacency is one directed router-to-router edge.
type adjacency struct {
	to      *router.Router
	out     *netsim.Iface
	gateway netaddr.Addr
	cost    int
}

// Compute runs SPF from every router and installs connected and IGP routes
// into the FIBs. It returns the SPF result for further control-plane use.
func (d *Domain) Compute() (*Result, error) {
	metric := d.Metric
	if metric == nil {
		metric = func(*netsim.Link) int { return 1 }
	}
	member := make(map[*router.Router]bool, len(d.Routers))
	for _, r := range d.Routers {
		member[r] = true
	}

	// Discover adjacencies and the prefix ownership map.
	adj := make(map[*router.Router][]adjacency, len(d.Routers))
	res := &Result{
		Owners:   make(map[netaddr.Prefix][]*router.Router),
		NextHops: make(map[*router.Router]map[netaddr.Prefix][]Hop),
		Dist:     make(map[*router.Router]map[*router.Router]int),
	}
	seenPrefix := make(map[netaddr.Prefix]bool)
	own := func(p netaddr.Prefix, r *router.Router) {
		if !seenPrefix[p] {
			seenPrefix[p] = true
			res.Prefixes = append(res.Prefixes, p)
		}
		for _, o := range res.Owners[p] {
			if o == r {
				return
			}
		}
		res.Owners[p] = append(res.Owners[p], r)
	}

	externalIfaces := make(map[*router.Router][]*netsim.Iface)
	for _, r := range d.Routers {
		if lo := r.Loopback(); lo != nil {
			own(lo.Prefix, r)
		}
		for _, ifc := range r.Ifaces() {
			if ifc.Link != nil && !ifc.Link.Up {
				// Failed link: the subnet stays connected (the interface
				// exists) but contributes no adjacency, so SPF routes
				// around it — Compute after a failure IS the reconvergence.
				externalIfaces[r] = append(externalIfaces[r], ifc)
				continue
			}
			remote := ifc.Remote()
			if remote != nil {
				if nr, isRouter := remote.Owner.(*router.Router); isRouter && !member[nr] {
					// Cross-AS link: the subnet stays out of the IGP (it is
					// redistributed into BGP by the border router), but the
					// border itself still needs the connected route.
					externalIfaces[r] = append(externalIfaces[r], ifc)
					continue
				}
			}
			own(ifc.Prefix, r)
			if remote == nil {
				continue
			}
			nr, ok := remote.Owner.(*router.Router)
			if !ok {
				continue // host-facing subnet: in the IGP, no adjacency
			}
			cost := metric(ifc.Link)
			if cost <= 0 {
				return nil, fmt.Errorf("igp: non-positive metric on link %s-%s", ifc, remote)
			}
			adj[r] = append(adj[r], adjacency{to: nr, out: ifc, gateway: remote.Addr, cost: cost})
		}
	}

	// SPF from each router.
	for _, src := range d.Routers {
		dist, firstHops := dijkstra(src, adj)
		res.Dist[src] = dist
		nh := make(map[netaddr.Prefix][]Hop, len(res.Prefixes))
		res.NextHops[src] = nh

		for _, p := range res.Prefixes {
			owners := res.Owners[p]
			// Connected wins.
			if hops := connectedHops(src, p); hops != nil {
				nh[p] = hops
				continue
			}
			best := math.MaxInt32
			for _, o := range owners {
				if dd, ok := dist[o]; ok && dd < best {
					best = dd
				}
			}
			if best == math.MaxInt32 {
				continue // unreachable
			}
			var hops []Hop
			seen := make(map[Hop]bool)
			for _, o := range owners {
				if dist[o] != best {
					continue
				}
				for _, h := range firstHops[o] {
					if !seen[h] {
						seen[h] = true
						hops = append(hops, h)
					}
				}
			}
			nh[p] = hops
		}
	}

	d.install(res)
	only := d.installSet()
	for r, ifaces := range externalIfaces {
		if only != nil && !only[r] {
			continue
		}
		for _, ifc := range ifaces {
			r.InstallRoute(ifc.Prefix, &router.Route{
				Origin:   router.OriginConnected,
				NextHops: []router.NextHop{{Out: ifc}},
			})
		}
	}
	return res, nil
}

// installSet returns the InstallOn membership set, or nil for "all".
func (d *Domain) installSet() map[*router.Router]bool {
	if d.InstallOn == nil {
		return nil
	}
	only := make(map[*router.Router]bool, len(d.InstallOn))
	for _, r := range d.InstallOn {
		only[r] = true
	}
	return only
}

// connectedHops returns the connected-route hops for p at r, or nil.
func connectedHops(r *router.Router, p netaddr.Prefix) []Hop {
	if lo := r.Loopback(); lo != nil && lo.Prefix == p {
		return []Hop{} // local address: no forwarding entry needed
	}
	for _, ifc := range r.Ifaces() {
		if ifc.Prefix == p {
			return []Hop{{Out: ifc}}
		}
	}
	return nil
}

// dijkstra computes distances and the ECMP first-hop sets from src.
func dijkstra(src *router.Router, adj map[*router.Router][]adjacency) (map[*router.Router]int, map[*router.Router][]Hop) {
	dist := map[*router.Router]int{src: 0}
	firstHops := map[*router.Router][]Hop{}
	pq := &nodeQueue{{r: src, d: 0}}

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeDist)
		if cur.d > dist[cur.r] {
			continue
		}
		for _, a := range adj[cur.r] {
			nd := cur.d + a.cost
			old, seen := dist[a.to]
			switch {
			case !seen || nd < old:
				dist[a.to] = nd
				firstHops[a.to] = appendHops(nil, cur.r, src, a, firstHops[cur.r])
				heap.Push(pq, nodeDist{r: a.to, d: nd})
			case nd == old:
				firstHops[a.to] = appendHops(firstHops[a.to], cur.r, src, a, firstHops[cur.r])
			}
		}
	}
	return dist, firstHops
}

// appendHops extends the ECMP first-hop set for a newly relaxed node: if
// the relaxing node is the source itself the first hop is the edge, else
// the first hops are inherited from the relaxing node.
func appendHops(hops []Hop, cur, src *router.Router, a adjacency, inherited []Hop) []Hop {
	add := func(h Hop) {
		for _, e := range hops {
			if e == h {
				return
			}
		}
		hops = append(hops, h)
	}
	if cur == src {
		add(Hop{Out: a.out, Gateway: a.gateway, Via: a.to})
		return hops
	}
	for _, h := range inherited {
		add(h)
	}
	return hops
}

// install writes connected and IGP routes into every router's FIB (or
// only the InstallOn subset).
func (d *Domain) install(res *Result) {
	only := d.installSet()
	for _, r := range d.Routers {
		if only != nil && !only[r] {
			continue
		}
		for p, hops := range res.NextHops[r] {
			if len(hops) == 0 {
				continue // local loopback
			}
			origin := router.OriginIGP
			if hops[0].Via == nil {
				origin = router.OriginConnected
			}
			nhs := make([]router.NextHop, len(hops))
			for i, h := range hops {
				nhs[i] = router.NextHop{Out: h.Out, Gateway: h.Gateway}
			}
			r.InstallRoute(p, &router.Route{Origin: origin, NextHops: nhs})
		}
	}
}

type nodeDist struct {
	r *router.Router
	d int
}

type nodeQueue []nodeDist

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(nodeDist)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	v := old[n-1]
	*q = old[:n-1]
	return v
}
