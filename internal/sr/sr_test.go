package sr

import (
	"testing"
	"time"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/probe"
	"wormhole/internal/router"
)

// diamond wires vp - a - {b | c-d} - e - h (same shape as the rsvpte
// tests): the IGP shortest path a-b-e, the detour a-c-d-e.
type diamond struct {
	net           *netsim.Network
	vp, host      *netsim.Host
	a, b, c, d, e *router.Router
	rs            []*router.Router
	prober        *probe.Prober
	spf           *igp.Result
}

func buildDiamond(t *testing.T, propagate bool) *diamond {
	t.Helper()
	net := netsim.New(8)
	f := &diamond{net: net}
	cfg := router.Config{MPLSEnabled: true, TTLPropagate: propagate}
	mk := func(name string, i int) *router.Router {
		r := router.New(name, router.Cisco, cfg)
		r.SetLoopback(netaddr.AddrFrom4(192, 168, 88, byte(i+1)))
		net.AddNode(r)
		if err := net.RegisterIface(r.Loopback()); err != nil {
			t.Fatal(err)
		}
		f.rs = append(f.rs, r)
		return r
	}
	f.a, f.b, f.c, f.d, f.e = mk("a", 0), mk("b", 1), mk("c", 2), mk("d", 3), mk("e", 4)
	sub := 0
	wire := func(x, y *router.Router) {
		p := netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, 88, byte(sub), 0), 30)
		sub++
		xi := x.AddIface("to-"+y.Name(), p.Nth(1), p)
		yi := y.AddIface("to-"+x.Name(), p.Nth(2), p)
		net.Connect(xi, yi, time.Millisecond)
		for _, ifc := range []*netsim.Iface{xi, yi} {
			if err := net.RegisterIface(ifc); err != nil {
				t.Fatal(err)
			}
		}
	}
	wire(f.a, f.b)
	wire(f.b, f.e)
	wire(f.a, f.c)
	wire(f.c, f.d)
	wire(f.d, f.e)

	vpP := netaddr.MustParsePrefix("10.88.100.0/30")
	f.vp = netsim.NewHost("vp", vpP.Nth(2), vpP)
	net.AddNode(f.vp)
	ai := f.a.AddIface("to-vp", vpP.Nth(1), vpP)
	net.Connect(ai, f.vp.If, time.Millisecond)
	hP := netaddr.MustParsePrefix("10.88.101.0/30")
	f.host = netsim.NewHost("h", hP.Nth(2), hP)
	net.AddNode(f.host)
	ei := f.e.AddIface("to-h", hP.Nth(1), hP)
	net.Connect(ei, f.host.If, time.Millisecond)
	for _, ifc := range []*netsim.Iface{ai, f.vp.If, ei, f.host.If} {
		if err := net.RegisterIface(ifc); err != nil {
			t.Fatal(err)
		}
	}

	dom := &igp.Domain{Routers: f.rs}
	spf, err := dom.Compute()
	if err != nil {
		t.Fatal(err)
	}
	f.spf = spf
	f.prober = probe.New(net, f.vp)
	return f
}

func hostFEC() netaddr.Prefix { return netaddr.MustParsePrefix("10.88.101.0/30") }

func responding(tr *probe.Trace) []netaddr.Addr {
	var out []netaddr.Addr
	for _, h := range tr.Hops {
		if !h.Anonymous() {
			out = append(out, h.Addr)
		}
	}
	return out
}

func TestSIDAssignment(t *testing.T) {
	f := buildDiamond(t, true)
	d, err := Build(f.rs, f.spf, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, r := range f.rs {
		sid, ok := d.SID(r)
		if !ok {
			t.Fatalf("%s has no SID", r.Name())
		}
		if sid < DefaultSRGBBase {
			t.Errorf("SID %d below SRGB base", sid)
		}
		if seen[sid] {
			t.Errorf("duplicate SID %d", sid)
		}
		seen[sid] = true
	}
}

func TestShortestPathSteerInvisible(t *testing.T) {
	f := buildDiamond(t, false)
	d, err := Build(f.rs, f.spf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ShortestPathSteer(f.a, f.e, hostFEC()); err != nil {
		t.Fatal(err)
	}
	tr := f.prober.Traceroute(f.host.Addr())
	if !tr.Reached {
		t.Fatalf("not reached: %+v", tr.Hops)
	}
	hops := responding(tr)
	// Steered via e's node SID without ttl-propagate: b hidden, PHP-style
	// pop at b leaves e visible: a, e, h.
	if len(hops) != 3 {
		t.Fatalf("hops = %v, want a, e, h", hops)
	}
}

func TestSegmentListDetour(t *testing.T) {
	f := buildDiamond(t, true)
	d, err := Build(f.rs, f.spf, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit segment list via d: traffic takes a-c-d then d's shortest
	// path to e.
	if err := d.Steer(f.a, hostFEC(), []*router.Router{f.d, f.e}); err != nil {
		t.Fatal(err)
	}
	tr := f.prober.Traceroute(f.host.Addr())
	if !tr.Reached {
		t.Fatalf("not reached: %+v", tr.Hops)
	}
	names := map[string]bool{}
	for _, a := range responding(tr) {
		if ifc, ok := f.net.OwnerOf(a); ok {
			names[ifc.Owner.Name()] = true
		}
	}
	if !names["c"] {
		t.Errorf("detour skipped c: %v", names)
	}
	if names["b"] {
		t.Errorf("traffic still crossed b: %v", names)
	}
}

func TestSRLeavesInternalPrefixesUnlabeled(t *testing.T) {
	// The DPR precondition: SR only steers what it is told to steer;
	// internal /30 targets follow plain IGP routes and expose every hop.
	f := buildDiamond(t, false)
	d, err := Build(f.rs, f.spf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ShortestPathSteer(f.a, f.e, hostFEC()); err != nil {
		t.Fatal(err)
	}
	// Target e's incoming interface on the b-e link: not steered.
	var target netaddr.Addr
	for _, ifc := range f.e.Ifaces() {
		if r, ok := ifc.Remote().Owner.(*router.Router); ok && r == f.b {
			target = ifc.Addr
		}
	}
	if target.IsUnspecified() {
		t.Fatal("no b-facing interface on e")
	}
	hops := responding(f.prober.Traceroute(target))
	// Plain IGP path: a, b, e all visible.
	if len(hops) != 3 {
		t.Fatalf("hops = %v, want 3 (DPR-style revelation)", hops)
	}
}

func TestSteerValidation(t *testing.T) {
	f := buildDiamond(t, true)
	d, err := Build(f.rs, f.spf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Steer(f.a, hostFEC(), nil); err == nil {
		t.Error("empty segment list accepted")
	}
	unrouted := netaddr.MustParsePrefix("203.0.113.0/24")
	if err := d.Steer(f.a, unrouted, []*router.Router{f.e}); err == nil {
		t.Error("unrouted FEC accepted")
	}
}

func TestBuildRejectsNonMPLS(t *testing.T) {
	f := buildDiamond(t, true)
	cfg := f.b.Config()
	cfg.MPLSEnabled = false
	f.b.SetConfig(cfg)
	if _, err := Build(f.rs, f.spf, 0); err == nil {
		t.Error("non-MPLS router accepted into SR domain")
	}
}

func TestSRWithPropagateShowsSegments(t *testing.T) {
	f := buildDiamond(t, true)
	d, err := Build(f.rs, f.spf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ShortestPathSteer(f.a, f.e, hostFEC()); err != nil {
		t.Fatal(err)
	}
	tr := f.prober.Traceroute(f.host.Addr())
	labeled := false
	for _, h := range tr.Hops {
		for _, lse := range h.MPLS {
			if lse.Label >= DefaultSRGBBase {
				labeled = true
			}
		}
	}
	if !labeled {
		t.Error("no SRGB label observed with ttl-propagate on")
	}
}

// TestThreeSegmentList pins the on-wire stack order for lists longer than
// two segments: a-c, then d, then e — the packet must visit c and d (in
// that order) before e, which a reversed Under stack would break.
func TestThreeSegmentList(t *testing.T) {
	f := buildDiamond(t, true)
	d, err := Build(f.rs, f.spf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Steer(f.a, hostFEC(), []*router.Router{f.c, f.d, f.e}); err != nil {
		t.Fatal(err)
	}
	tr := f.prober.Traceroute(f.host.Addr())
	if !tr.Reached {
		t.Fatalf("not reached: %+v", tr.Hops)
	}
	var order []string
	for _, h := range tr.Hops {
		if ifc, ok := f.net.OwnerOf(h.Addr); ok {
			order = append(order, ifc.Owner.Name())
		}
	}
	// Expect a, c, d, e, h in sequence.
	want := []string{"a", "c", "d", "e", "h"}
	if len(order) != len(want) {
		t.Fatalf("path = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("path = %v, want %v", order, want)
		}
	}
}
