// Package sr implements Segment Routing over MPLS (SR-MPLS), the third
// label-distribution mechanism the paper's survey encounters (footnote 4:
// one operator uses neither LDP nor RSVP-TE — "probably Segment
// Routing"). Every router gets a globally significant node segment (SRGB
// base + node index); transit routers forward a node-SID unchanged toward
// its owner, and the owner's IGP neighbors pop it (the PHP analogue).
// Ingress routers steer a FEC by pushing one node-SID (shortest-path
// steering) or a stack of them (explicit segment paths, the TE analogue).
//
// For tunnel visibility, SR behaves like host-routes LDP: only node
// segments exist, so traffic to internal subnets follows plain IGP routes
// — DPR applies — while steered traffic is hidden when ttl-propagate is
// off.
package sr

import (
	"fmt"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/router"
)

// DefaultSRGBBase is the conventional start of the SR global block.
const DefaultSRGBBase = 16000

// Domain is an SR-enabled IGP domain.
type Domain struct {
	// Base is the SRGB base label (DefaultSRGBBase when zero).
	Base uint32
	// sids maps each router to its node-SID label.
	sids map[*router.Router]uint32
	spf  *igp.Result
}

// Build assigns node SIDs in router order and installs the SR LFIBs:
// each router forwards every other router's node-SID along the IGP
// shortest path, with the SID popped by the owner's upstream neighbor.
func Build(routers []*router.Router, spf *igp.Result, base uint32) (*Domain, error) {
	if base == 0 {
		base = DefaultSRGBBase
	}
	d := &Domain{Base: base, sids: make(map[*router.Router]uint32, len(routers)), spf: spf}
	for i, r := range routers {
		if !r.Config().MPLSEnabled {
			return nil, fmt.Errorf("sr: %s has MPLS disabled", r.Name())
		}
		d.sids[r] = base + uint32(i)
		// The owner disposes its own node SID (it arrives non-popped when
		// the upstream hop still had deeper segments to deliver, or when
		// an adjacent ingress imposed a multi-segment stack).
		r.InstallLFIB(&router.LFIBEntry{InLabel: d.sids[r], PopLocal: true})
	}
	for _, target := range routers {
		lo := target.Loopback()
		if lo == nil {
			return nil, fmt.Errorf("sr: %s has no loopback for its node SID", target.Name())
		}
		sid := d.sids[target]
		for _, r := range routers {
			if r == target {
				continue
			}
			hops := spf.NextHops[r][lo.Prefix]
			if len(hops) == 0 {
				continue // partitioned
			}
			var lhops []router.LabelHop
			for _, h := range hops {
				out := uint32(sid)
				if h.Via == target {
					out = router.OutLabelImplicitNull // penultimate pop
				}
				lhops = append(lhops, router.LabelHop{Out: h.Out, Label: out})
			}
			r.InstallLFIB(&router.LFIBEntry{InLabel: sid, NextHops: lhops})
		}
	}
	return d, nil
}

// SID returns a router's node segment.
func (d *Domain) SID(r *router.Router) (uint32, bool) {
	s, ok := d.sids[r]
	return s, ok
}

// Steer makes ingress push the segment list (visited in order) for
// traffic matching fec. The final segment's owner must be the egress; the
// packet continues as IP from there. The ingress must already have a FIB
// route covering fec.
func (d *Domain) Steer(ingress *router.Router, fec netaddr.Prefix, segments []*router.Router) error {
	if len(segments) == 0 {
		return fmt.Errorf("sr: empty segment list")
	}
	if _, _, ok := ingress.LookupRoute(fec.Addr()); !ok {
		return fmt.Errorf("sr: ingress %s has no route for %s", ingress.Name(), fec)
	}
	// The imposition entry carries the first segment on top; the remaining
	// segments ride beneath it on the stack (LabelHop.Under) and surface
	// one by one as each segment's penultimate hop pops.
	first := segments[0]
	hops := d.spf.NextHops[ingress][first.Loopback().Prefix]
	if ingress == first {
		// Degenerate: first segment is the ingress itself; skip it.
		return d.Steer(ingress, fec, segments[1:])
	}
	if len(hops) == 0 {
		return fmt.Errorf("sr: %s cannot reach segment %s", ingress.Name(), first.Name())
	}
	// Under[0] sits directly beneath the top label and Under[len-1] is
	// the deepest (= last) segment, so the list follows segment order.
	var stack []uint32
	for i := 1; i < len(segments); i++ {
		sid, ok := d.sids[segments[i]]
		if !ok {
			return fmt.Errorf("sr: %s has no SID", segments[i].Name())
		}
		stack = append(stack, sid)
	}
	firstSID, ok := d.sids[first]
	if !ok {
		return fmt.Errorf("sr: %s has no SID", first.Name())
	}
	var lhops []router.LabelHop
	for _, h := range hops {
		top := firstSID
		if h.Via == first && len(stack) == 0 {
			top = router.OutLabelImplicitNull
		}
		lhops = append(lhops, router.LabelHop{Out: h.Out, Label: top, Under: stack})
	}
	ingress.InstallBinding(&router.Binding{FEC: fec, NextHops: lhops})
	return nil
}

// ShortestPathSteer steers fec via the single node segment of egress.
func (d *Domain) ShortestPathSteer(ingress, egress *router.Router, fec netaddr.Prefix) error {
	return d.Steer(ingress, fec, []*router.Router{egress})
}
