package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"wormhole/internal/bgp"
	"wormhole/internal/igp"
	"wormhole/internal/ldp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
)

// The streamed hierarchical builder. The flat builder converges every AS
// and runs one global BGP pass, which is O(ASes²) in both time and
// per-router table size — fine up to flatASLimit, hopeless at 10⁵
// routers. This path exploits the topology's own hierarchy instead:
//
//   - Tier-1s and transits (the core, a few hundred ASes) are built,
//     wired, and converged eagerly with the exact same machinery as the
//     flat path — IGP, LDP, RSVP-TE, full valley-free BGP.
//   - Stubs stream through one at a time: aggregate carved from the
//     primary provider's block (provider aggregation), IGP converged,
//     default route + provider-local customer route installed
//     (bgp.AttachStub), then the transient SPF result is dropped and
//     marked lazily recomputable. Peak transient state is one stub.
//
// Per-router BGP state is thus bounded by the core size plus the local
// customer count, not the AS count: the whole point of the paper-scale
// ladder's bytes/router budget.
//
// Addressing plan (disjoint from the flat builder's 10.0.0.0/8):
//
//	tier-1 i:  11.i.0.0/16
//	transit i: /11 blocks from 16.0.0.0 upward
//	stub:      a /20 carved top-down from its primary transit's /11
//	           (the top /20 of each /11 is reserved: transit loopbacks
//	           live in its top 256 addresses)
//
// Addresses inside an aggregate that were never assigned to an interface
// forward toward the aggregate's origin and die by TTL there — same
// behavior unallocated provider space has in the real Internet, and
// campaigns only probe registered addresses.

// stubRegionSize is how many consecutive stubs share one geographic
// region (a grid cell on the unit square) when regional delays are on.
const stubRegionSize = 256

// maxHierTransits bounds the transit count so the /11 blocks stay inside
// the 32-bit address space (16.0.0.0 + 1024·2²¹ < 2³²).
const maxHierTransits = 1024

func tier1Aggregate(i int) netaddr.Prefix {
	return netaddr.MustPrefixFrom(netaddr.AddrFrom4(11, byte(i), 0, 0), 16)
}

func transitAggregate(i int) netaddr.Prefix {
	base := netaddr.AddrFrom4(16, 0, 0, 0)
	return netaddr.MustPrefixFrom(base+netaddr.Addr(uint32(i)<<21), 11)
}

func buildHierarchical(p Params) (*Internet, error) {
	if p.InBandControlPlane {
		return nil, fmt.Errorf("gen: hierarchical build does not support InBandControlPlane")
	}
	if p.NumTier1 < 1 || p.NumTier1 > 256 || p.NumTransit < 1 || p.NumTransit > maxHierTransits {
		return nil, fmt.Errorf("gen: unsupported hierarchical AS counts (%d/%d/%d)", p.NumTier1, p.NumTransit, p.NumStub)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	in := &Internet{
		Net:     netsim.New(p.Seed ^ 0x5eed),
		asByNum: make(map[uint32]*ASInfo, p.NumTier1+p.NumTransit+p.NumStub),
		params:  p,
		rng:     rng,
	}
	in.ASes = make([]*ASInfo, 0, p.NumTier1+p.NumTransit+p.NumStub)

	// 1. Core ASes: stratified profiles and intra-AS topologies, exactly
	// like the flat path.
	profiles := stratifiedProfiles(p, p.NumTier1+p.NumTransit, rng)
	num := uint32(1)
	next := 0
	mkCore := func(tier Tier, agg netaddr.Prefix, floor uint32) *ASInfo {
		prof := profiles[next]
		next++
		prof.Tier = tier
		x := rng.Float64()
		y := rng.Float64()
		as := in.newAS(num, prof, agg, x, y)
		num++
		if floor != 0 {
			as.childFloor = floor
		}
		in.buildASTopology(rng, p, as, tier)
		return as
	}
	tier1s := make([]*ASInfo, 0, p.NumTier1)
	for i := 0; i < p.NumTier1; i++ {
		tier1s = append(tier1s, mkCore(Tier1, tier1Aggregate(i), 0))
	}
	transits := make([]*ASInfo, 0, p.NumTransit)
	for i := 0; i < p.NumTransit; i++ {
		agg := transitAggregate(i)
		// Reserve the top /20 (loopbacks sit in its top 256 addresses);
		// everything below it is carvable customer space.
		floor := uint32(agg.NumAddrs()) - (1 << 12)
		transits = append(transits, mkCore(Transit, agg, floor))
	}

	// 2. Core wiring: tier-1 full mesh, transits buying from 1-2 tier-1s,
	// probabilistic transit peering — the flat builder's shapes.
	var coreSessions []*bgp.Session
	link := func(a, b *ASInfo, rel bgp.Relationship) {
		coreSessions = append(coreSessions, in.connectASes(p, a, b, rel))
	}
	for i := 0; i < len(tier1s); i++ {
		for j := i + 1; j < len(tier1s); j++ {
			link(tier1s[i], tier1s[j], bgp.APeerOfB)
		}
	}
	for _, tr := range transits {
		providers := 1 + rng.Intn(2)
		perm := rng.Perm(len(tier1s))
		for k := 0; k < providers && k < len(perm); k++ {
			link(tr, tier1s[perm[k]], bgp.ACustomerOfB)
		}
	}
	for i := 0; i < len(transits); i++ {
		for j := i + 1; j < len(transits); j++ {
			if rng.Float64() < p.TransitPeerProb {
				link(transits[i], transits[j], bgp.APeerOfB)
			}
		}
	}

	// 3. Core control planes: IGP, LDP, TE per AS, then one full
	// valley-free BGP pass over the core only.
	coreASes := make([]*ASInfo, 0, len(tier1s)+len(transits))
	coreASes = append(coreASes, tier1s...)
	coreASes = append(coreASes, transits...)
	bgpCore := make([]*bgp.AS, 0, len(coreASes))
	for _, as := range coreASes {
		dom := &igp.Domain{Routers: as.Routers()}
		spf, err := dom.Compute()
		if err != nil {
			return nil, fmt.Errorf("gen: AS%d SPF: %w", as.Num, err)
		}
		as.spf = spf
		if as.Profile.MPLS {
			ldp.Build(as.Routers(), spf)
			if as.Profile.TE {
				in.addTETunnels(as)
			}
		}
		bgpCore = append(bgpCore, &bgp.AS{
			Num:      as.Num,
			Routers:  as.Routers(),
			Prefixes: []netaddr.Prefix{as.Aggregate},
			SPF:      spf,
		})
	}
	if err := bgp.Compute(&bgp.Topology{ASes: bgpCore, Sessions: coreSessions}); err != nil {
		return nil, err
	}

	// 4. Vantage-point slots: distinct stubs chosen up front so streaming
	// can attach each VP the moment its stub exists.
	vpSlot := make(map[int]int, p.NumVPs)
	vpPerm := rng.Perm(p.NumStub)
	for i := 0; i < p.NumVPs && i < len(vpPerm); i++ {
		vpSlot[vpPerm[i]] = i
	}

	// 5. Plan every stub from the build rng: coordinates, providers,
	// profile, router count, a private construction seed, and the carved
	// /20 — everything the eager build would have decided globally, and
	// nothing that requires construction. Consecutive stubs share a
	// geographic grid cell (regional locality). Construction itself
	// (materializeStub) replays from the private seed, so it produces the
	// same routers whether it runs in the loop below or at first touch
	// months of probes later.
	lz := &lazyState{
		deferred: p.LazyStubs,
		descs:    make([]stubDesc, 0, p.NumStub),
	}
	for _, as := range coreASes {
		lz.coreRouters += len(as.Core) + len(as.Edge)
	}
	in.lazy = lz
	regions := (p.NumStub + stubRegionSize - 1) / stubRegionSize
	grid := int(math.Ceil(math.Sqrt(float64(regions))))
	if grid < 1 {
		grid = 1
	}
	for i := 0; i < p.NumStub; i++ {
		region := i / stubRegionSize
		cx := float64(region % grid)
		cy := float64(region / grid)
		x := (cx + rng.Float64()) / float64(grid)
		y := (cy + rng.Float64()) / float64(grid)

		nProv := 1
		if len(transits) > 1 && rng.Intn(2) == 1 {
			nProv = 2
		}
		p1 := rng.Intn(len(transits))
		provIdx := [2]int{p1, 0}
		if nProv == 2 {
			p2 := rng.Intn(len(transits))
			for p2 == p1 {
				p2 = rng.Intn(len(transits))
			}
			provIdx[1] = p2
		}

		prof := in.stubProfile(p)
		prof.Tier = Stub
		nCore := rngRange(rng, p.StubRouters)
		seed := rng.Int63()
		as := in.newAS(num, prof, transits[provIdx[0]].carveChild20(), x, y)
		num++

		d := stubDesc{
			seed:    seed,
			asIndex: as.index,
			nProv:   int32(nProv),
			nCore:   int32(nCore),
			vp:      -1,
		}
		d.prov[0] = transits[provIdx[0]].index
		d.prov[1] = transits[provIdx[1]].index
		if v, ok := vpSlot[i]; ok {
			d.vp = int32(v)
		}
		lz.descs = append(lz.descs, d)
		lz.stubRouters += nCore
	}
	lz.spans = make([]stubSpan, len(lz.descs))
	for si, d := range lz.descs {
		lz.spans[si] = stubSpan{start: in.ASes[d.asIndex].Aggregate.Addr(), si: int32(si)}
	}
	sort.Slice(lz.spans, func(i, j int) bool { return lz.spans[i].start < lz.spans[j].start })
	lz.resident = make(bitset, (len(lz.descs)+63)/64)
	lz.residentRouters = lz.coreRouters

	// 6. Materialize: everything for the eager build, only the VP stubs
	// for a lazy one — the rest faults in on first touch via the hook.
	for si := range lz.descs {
		if p.LazyStubs && lz.descs[si].vp < 0 {
			continue
		}
		in.materializeStub(int32(si))
		in.markResident(int32(si))
	}
	in.finishAddrIndex()
	lz.sealed = true
	if p.LazyStubs {
		in.Net.SetFaultInHook(in.faultInAddr)
	}
	return in, nil
}
