// Package gen generates synthetic Internets: a three-tier AS hierarchy
// (Tier-1 full-mesh peering, transit ASes buying from Tier-1s, stubs
// buying from transits), two-level intra-AS PoP topologies (core ring plus
// edge routers), addressing, and per-AS hardware and MPLS configuration
// drawn from the paper's operator survey (Sec. 1-2: 87% of operators
// deploy MPLS, 48% use no-ttl-propagate, 10% UHP; 58% Cisco, 28% Juniper,
// the rest mixed).
//
// The generated network plays the role of the real Internet in the
// reproduction: its traceroute-observed graph stands in for the CAIDA
// ITDK, its stub-attached hosts for PlanetLab vantage points, and its
// ground-truth address-to-router map for ITDK alias resolution.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"wormhole/internal/bgp"
	"wormhole/internal/igp"
	"wormhole/internal/ldp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/ospf"
	"wormhole/internal/probe"
	"wormhole/internal/router"
	"wormhole/internal/rsvpte"
)

// Tier classifies an AS's role.
type Tier uint8

const (
	Tier1 Tier = iota
	Transit
	Stub
)

func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Transit:
		return "transit"
	default:
		return "stub"
	}
}

// Vendor is the hardware profile of an AS.
type Vendor uint8

const (
	VendorCisco Vendor = iota
	VendorJuniper
	VendorMixed
	VendorLegacy
)

func (v Vendor) String() string {
	switch v {
	case VendorCisco:
		return "cisco"
	case VendorJuniper:
		return "juniper"
	case VendorMixed:
		return "mixed"
	default:
		return "legacy"
	}
}

// Params tunes the generator. The zero value is unusable; use
// DefaultParams.
type Params struct {
	Seed int64

	NumTier1, NumTransit, NumStub int

	// Router counts per AS class: [core, edge] ranges.
	Tier1Core, Tier1Edge     [2]int
	TransitCore, TransitEdge [2]int
	StubRouters              [2]int

	// Survey-derived configuration distribution.
	MPLSFrac        float64 // share of transit/Tier-1 ASes running MPLS
	NoPropagateFrac float64 // share of MPLS ASes hiding tunnels
	UHPFrac         float64 // share of MPLS ASes using UHP
	TEFrac          float64 // share of MPLS ASes adding RSVP-TE detour tunnels
	CiscoFrac       float64
	JuniperFrac     float64
	MixedFrac       float64 // remainder after Cisco+Juniper+Mixed: legacy

	// TransitPeerProb links pairs of transit ASes as peers.
	TransitPeerProb float64

	NumVPs int

	// Link delays are uniform in [MinDelay, MaxDelay].
	MinDelay, MaxDelay time.Duration
	// Regional places each AS at a random point on a unit square and
	// scales inter-AS link delays with the distance between the
	// endpoints' regions (up to RegionDelay for opposite corners),
	// modeling geography the way PlanetLab vantage points experience it.
	Regional    bool
	RegionDelay time.Duration
	// InBandControlPlane converges every AS with actual protocol message
	// exchange on the fabric (OSPF LSA flooding, LDP mapping cascades)
	// instead of the centralized computations. Slower to build,
	// observationally identical; integration tests exercise both.
	InBandControlPlane bool

	// Hierarchical forces the streamed, provider-aggregated build path
	// (see hier.go): tier-1 and transit ASes converge eagerly, stubs are
	// emitted region by region with provider-carved address blocks,
	// default routes instead of full tables, and lazily recomputable SPF
	// state. It turns on automatically above the flat builder's AS limit;
	// setting it explicitly lets tests exercise the streamed path at
	// small scale. Incompatible with InBandControlPlane.
	Hierarchical bool

	// LazyStubs defers stub construction past Build: the hierarchical
	// builder keeps only a per-stub descriptor (seed, provider attachment,
	// router count) and a stub's routers, tables, and routes materialize
	// on first touch — the first probe toward its /20, or a ground-truth
	// resolution inside it (see lazy.go). VP stubs are always built
	// eagerly. The materialized world is byte-identical to the eager build
	// of the same Params: construction replays from the stub's own seeded
	// rng either way. Implies Hierarchical.
	LazyStubs bool
}

// DefaultParams mirrors the survey shares at a simulable scale.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:            seed,
		NumTier1:        4,
		NumTransit:      12,
		NumStub:         30,
		Tier1Core:       [2]int{6, 10},
		Tier1Edge:       [2]int{8, 12},
		TransitCore:     [2]int{4, 7},
		TransitEdge:     [2]int{5, 9},
		StubRouters:     [2]int{1, 3},
		MPLSFrac:        0.87,
		NoPropagateFrac: 0.48,
		UHPFrac:         0.10,
		TEFrac:          0.42,
		CiscoFrac:       0.58,
		JuniperFrac:     0.28,
		MixedFrac:       0.10,
		TransitPeerProb: 0.25,
		NumVPs:          10,
		MinDelay:        500 * time.Microsecond,
		MaxDelay:        5 * time.Millisecond,
		Regional:        true,
		RegionDelay:     60 * time.Millisecond,
	}
}

// Profile is the generated configuration of one AS.
type Profile struct {
	Tier      Tier
	Vendor    Vendor
	MPLS      bool
	Propagate bool // ttl-propagate
	UHP       bool
	TE        bool // RSVP-TE detour tunnels on top of LDP
	LDP       router.LDPPolicy
}

// Invisible reports whether the AS hides its tunnels from traceroute.
func (p Profile) Invisible() bool { return p.MPLS && !p.Propagate }

// ASInfo is one generated AS.
type ASInfo struct {
	Num     uint32
	Name    string
	Profile Profile
	// X, Y locate the AS on the unit square when regional delays are on.
	X, Y float64
	Core []*router.Router
	Edge []*router.Router
	// Aggregate is the announced address block.
	Aggregate netaddr.Prefix

	// spf is the AS's computed IGP state. It is materialized lazily when
	// spfMode says so: campaign workers never read SPF state, and
	// remapping (or recomputing) it eagerly costs as much as cloning all
	// the router tables of the AS. The mode enum replaces a per-AS
	// closure so snapshots stay allocation-free.
	spf     *igp.Result
	spfMode uint8
	snapSrc *ASInfo  // spfRemap: source AS to remap from
	snapCtx *snapCtx // spfRemap: shared pointer-translation context

	// teTunnels records every RSVP-TE tunnel signalling *attempt* of the
	// build, in order — including attempts Signal rejected, because a
	// late rejection (ingress route check) has already allocated labels.
	// Replaying ClearMPLS + ldp.Build + these signals in order restores
	// the AS's label plane byte-for-byte; churn repair depends on that.
	teTunnels []*rsvpte.Tunnel

	// index is the AS's position in Internet.ASes, stable across
	// snapshots; the shared address index records it instead of pointers.
	index int32

	// lazyRecs holds the ground-truth address records a post-build
	// fault-in registered for this stub (its own interfaces plus both ends
	// of its provider cross-links — all inside the stub's /20). The sorted
	// global index is sealed at Build and shared across replicas by
	// reference, so late registrations live here instead; lookupAddr scans
	// this (≤ a dozen entries) after matching the block. Append-once at
	// materialization, immutable after.
	lazyRecs []addrRec

	// childFloor bounds subnet30 allocation from above, in addresses from
	// the aggregate base: everything at or past it is reserved (loopback
	// range, and in hierarchical transits the child /20 blocks carved
	// top-down by carveChild20).
	childFloor uint32

	nextSubnet uint32
	nextLo     uint32
}

// SPF materialization modes for snapshot replicas and streamed stubs.
const (
	spfEager     uint8 = iota // spf is whatever it is; no lazy work
	spfRecompute              // recompute from the replica's own routers on demand
	spfRemap                  // remap the source AS's result through snapCtx
)

// SPF returns the AS's computed IGP state (nil if the AS has none). On
// snapshot replicas — and on streamed stubs that dropped their transient
// build-time SPF — the first call materializes it.
func (as *ASInfo) SPF() *igp.Result {
	if as.spf != nil {
		return as.spf
	}
	switch as.spfMode {
	case spfRecompute:
		as.spfMode = spfEager
		// InstallOn non-nil and empty: compute paths, install nothing —
		// materializing ground truth must not touch router tables (that
		// would bump TopoGen and poison the replica pool).
		dom := &igp.Domain{Routers: as.Routers(), InstallOn: []*router.Router{}}
		res, err := dom.Compute()
		if err != nil {
			panic(fmt.Sprintf("gen: AS%d lazy SPF: %v", as.Num, err))
		}
		as.spf = res
	case spfRemap:
		as.spfMode = spfEager
		src, ctx := as.snapSrc, as.snapCtx
		as.snapSrc, as.snapCtx = nil, nil
		if s := src.SPF(); s != nil {
			as.spf = s.Remap(ctx.router, ctx.iface)
		}
	}
	return as.spf
}

// Routers returns all routers of the AS.
func (a *ASInfo) Routers() []*router.Router {
	out := make([]*router.Router, 0, len(a.Core)+len(a.Edge))
	out = append(out, a.Core...)
	return append(out, a.Edge...)
}

// VP is one vantage point: a host plus its prober.
type VP struct {
	Host   *netsim.Host
	Prober *probe.Prober
	AS     *ASInfo
}

// addrRec is one row of the ground-truth address index: interface address
// to (fabric node index, AS index). Indices instead of pointers make the
// sorted slice world-independent — a structural snapshot shares it by
// reference (node and AS order are clone invariants), so replicating the
// index costs nothing regardless of fabric size.
type addrRec struct {
	addr netaddr.Addr
	node int32
	as   int32
}

// Internet is the generated world.
type Internet struct {
	Net  *netsim.Network
	ASes []*ASInfo
	VPs  []*VP

	// addrRecs is the ground-truth address index, sorted by address once
	// Build finishes (binary-searched by Resolve/Owner). Snapshots share
	// it by reference; see addrRec.
	addrRecs []addrRec

	// asByNum indexes ASes by number for constant-time ASByNum.
	asByNum map[uint32]*ASInfo

	// params is the exact Build input, kept so Rebuild can replay it.
	params Params

	rng *rand.Rand

	// lazy is the hierarchical builder's stub-universe plan (see lazy.go):
	// per-stub descriptors, the fault-in resident set, and the post-seal
	// address records. Nil for flat worlds.
	lazy *lazyState

	// pool caches built replicas across parallel campaigns (see pool.go).
	pool replicaPool
}

// Params returns the parameters the Internet was built from.
func (in *Internet) Params() Params { return in.params }

// Clone builds an independent replica of this Internet: every router,
// link, and fabric object is fresh, so the replica can be driven from its
// own goroutine with no sharing. It takes the fast path — a structural
// Snapshot of the built state — except for in-band-converged worlds, which
// fall back to Rebuild (a full generator replay) because their routers
// carry control-plane closures that cannot be copied.
func (in *Internet) Clone() (*Internet, error) {
	if in.params.InBandControlPlane {
		return in.Rebuild()
	}
	return in.Snapshot()
}

// AddrInfo is the ground-truth owner of an interface address.
type AddrInfo struct {
	Router *router.Router
	AS     *ASInfo
}

// lookupAddr binary-searches the sorted ground-truth index, falling back
// to the lazy stub universe: an address inside a not-yet-resident stub's
// /20 faults the stub in (resolution is ground truth — it must agree with
// what a probe toward the address would materialize) and is then resolved
// against the stub's local record list.
func (in *Internet) lookupAddr(a netaddr.Addr) (addrRec, bool) {
	i := sort.Search(len(in.addrRecs), func(i int) bool { return in.addrRecs[i].addr >= a })
	if i < len(in.addrRecs) && in.addrRecs[i].addr == a {
		return in.addrRecs[i], true
	}
	if si, ok := in.stubByAddr(a); ok {
		in.ensureStub(si)
		as := in.ASes[in.lazy.descs[si].asIndex]
		for _, rec := range as.lazyRecs {
			if rec.addr == a {
				return rec, true
			}
		}
	}
	return addrRec{}, false
}

// Resolve is the ground-truth resolver handed to topo.Graph (the ITDK
// alias/AS mapping substitute).
func (in *Internet) Resolve(a netaddr.Addr) (string, uint32, bool) {
	rec, ok := in.lookupAddr(a)
	if !ok {
		return "", 0, false
	}
	r := in.Net.Nodes()[rec.node].(*router.Router)
	return r.Name(), in.ASes[rec.as].Num, true
}

// Owner returns ground-truth info for an address.
func (in *Internet) Owner(a netaddr.Addr) (AddrInfo, bool) {
	rec, ok := in.lookupAddr(a)
	if !ok {
		return AddrInfo{}, false
	}
	return AddrInfo{
		Router: in.Net.Nodes()[rec.node].(*router.Router),
		AS:     in.ASes[rec.as],
	}, true
}

// ASByNum returns the AS with the given number. Lookup paths call this per
// reply, so it goes through the Build-time index rather than scanning.
func (in *Internet) ASByNum(num uint32) *ASInfo {
	return in.asByNum[num]
}

// RouterAddrs returns every registered router interface address (loopbacks
// included), in deterministic order. Campaigns draw probing targets from
// this set. On a lazy world it materializes the whole universe first —
// full enumeration defeats laziness by definition; streaming campaigns
// use ProbeSpace instead, which enumerates without constructing.
func (in *Internet) RouterAddrs() []netaddr.Addr {
	in.materializeAll()
	// Every registered router address has exactly one ground-truth row, so
	// the index length is the exact output size.
	out := make([]netaddr.Addr, 0, len(in.addrRecs))
	for _, as := range in.ASes {
		for _, r := range as.Routers() {
			if lo := r.Loopback(); lo != nil {
				out = append(out, lo.Addr)
			}
			for _, ifc := range r.Ifaces() {
				out = append(out, ifc.Addr)
			}
		}
	}
	return out
}

// Build generates an Internet. Worlds beyond the flat builder's AS limit
// (or with Params.Hierarchical set) go through the streamed hierarchical
// builder in hier.go; small worlds keep the flat path byte-for-byte.
func Build(p Params) (*Internet, error) {
	if p.NumTier1 < 1 {
		return nil, fmt.Errorf("gen: unsupported AS counts (%d/%d/%d)", p.NumTier1, p.NumTransit, p.NumStub)
	}
	// Decided locally, never written back into p: Params must round-trip
	// unchanged through Build (Rebuild replays the stored copy).
	hier := p.Hierarchical || p.LazyStubs || p.NumTier1+p.NumTransit+p.NumStub > flatASLimit
	if hier {
		return buildHierarchical(p)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	in := &Internet{
		Net:     netsim.New(p.Seed ^ 0x5eed),
		asByNum: make(map[uint32]*ASInfo),
		params:  p,
		rng:     rng,
	}

	// 1. Create ASes with intra-AS topologies. Transit and Tier-1 profiles
	// are assigned by stratified sampling so the survey shares hold
	// exactly whatever the seed (a small independent-draw world can
	// otherwise end up with no invisible tunnels at all).
	profiles := stratifiedProfiles(p, p.NumTier1+p.NumTransit, rng)
	num := uint32(1)
	next := 0
	build := func(tier Tier, n int) []*ASInfo {
		var out []*ASInfo
		for i := 0; i < n; i++ {
			var prof Profile
			if tier == Stub {
				prof = in.stubProfile(p)
			} else {
				prof = profiles[next]
				next++
			}
			prof.Tier = tier
			as := in.buildAS(p, num, tier, prof)
			num++
			out = append(out, as)
		}
		return out
	}
	tier1s := build(Tier1, p.NumTier1)
	transits := build(Transit, p.NumTransit)
	stubs := build(Stub, p.NumStub)

	// 2. Inter-AS wiring.
	var sessions []*bgp.Session
	link := func(a, b *ASInfo, rel bgp.Relationship) {
		sessions = append(sessions, in.connectASes(p, a, b, rel))
	}
	for i := 0; i < len(tier1s); i++ {
		for j := i + 1; j < len(tier1s); j++ {
			link(tier1s[i], tier1s[j], bgp.APeerOfB)
		}
	}
	for _, tr := range transits {
		providers := 1 + rng.Intn(2)
		perm := rng.Perm(len(tier1s))
		for k := 0; k < providers && k < len(perm); k++ {
			link(tr, tier1s[perm[k]], bgp.ACustomerOfB)
		}
	}
	for i := 0; i < len(transits); i++ {
		for j := i + 1; j < len(transits); j++ {
			if rng.Float64() < p.TransitPeerProb {
				link(transits[i], transits[j], bgp.APeerOfB)
			}
		}
	}
	for _, st := range stubs {
		providers := 1 + rng.Intn(2)
		perm := rng.Perm(len(transits))
		for k := 0; k < providers && k < len(perm); k++ {
			link(st, transits[perm[k]], bgp.ACustomerOfB)
		}
	}

	// 3. Vantage points on distinct stubs.
	vpStubs := rng.Perm(len(stubs))
	for i := 0; i < p.NumVPs && i < len(vpStubs); i++ {
		as := stubs[vpStubs[i]]
		in.attachVP(in.rng, p, as, i)
	}

	// 4. Control planes: IGP per AS, LDP where MPLS, then BGP.
	var bgpASes []*bgp.AS
	for _, as := range in.ASes {
		var spf *igp.Result
		if p.InBandControlPlane {
			area := ospf.Enable(in.Net, as.Routers())
			if err := area.Converge(); err != nil {
				return nil, fmt.Errorf("gen: AS%d OSPF: %w", as.Num, err)
			}
			var err error
			if spf, err = area.Result(); err != nil {
				return nil, fmt.Errorf("gen: AS%d OSPF result: %w", as.Num, err)
			}
		} else {
			dom := &igp.Domain{Routers: as.Routers()}
			var err error
			if spf, err = dom.Compute(); err != nil {
				return nil, fmt.Errorf("gen: AS%d SPF: %w", as.Num, err)
			}
		}
		as.spf = spf
		if as.Profile.MPLS {
			if p.InBandControlPlane {
				ldp.EnableInBand(in.Net, as.Routers()).Converge()
			} else {
				ldp.Build(as.Routers(), spf)
			}
			if as.Profile.TE {
				in.addTETunnels(as)
			}
		}
		bgpASes = append(bgpASes, &bgp.AS{
			Num:      as.Num,
			Routers:  as.Routers(),
			Prefixes: []netaddr.Prefix{as.Aggregate},
			SPF:      spf,
		})
	}
	topo := &bgp.Topology{ASes: bgpASes, Sessions: sessions}
	if p.InBandControlPlane {
		bgp.EnableInBand(in.Net, topo).ConvergeAll()
	} else if err := bgp.Compute(topo); err != nil {
		return nil, err
	}
	in.finishAddrIndex()
	return in, nil
}

// finishAddrIndex sorts the ground-truth index once registration is done;
// Resolve/Owner binary-search it from then on.
func (in *Internet) finishAddrIndex() {
	sort.Slice(in.addrRecs, func(i, j int) bool { return in.addrRecs[i].addr < in.addrRecs[j].addr })
}

// --- internals ---

func rngRange(rng *rand.Rand, r [2]int) int {
	if r[1] <= r[0] {
		return r[0]
	}
	return r[0] + rng.Intn(r[1]-r[0]+1)
}

// delay draws a link delay from rng — the builder's rng for eager
// construction, a stub's own seeded rng during (lazy or eager)
// materialization, so the draw stream is identical either way.
func delay(rng *rand.Rand, p Params) time.Duration {
	span := p.MaxDelay - p.MinDelay
	if span <= 0 {
		return p.MinDelay
	}
	return p.MinDelay + time.Duration(rng.Int63n(int64(span)))
}

// flatASLimit is the most ASes the flat builder handles; beyond it Build
// switches to the streamed hierarchical path (hier.go).
const flatASLimit = 250

// aggregateOf returns AS number num's /16 block (10.num.0.0/16) — the flat
// builder's addressing plan. The hierarchical builder assigns
// provider-aggregated blocks instead (see hier.go).
func aggregateOf(num uint32) netaddr.Prefix {
	return netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, byte(num), 0, 0), 16)
}

// size returns the AS aggregate's address count. Blocks are at most /11,
// so the count fits uint32.
func (a *ASInfo) size() uint32 {
	return uint32(a.Aggregate.NumAddrs())
}

// subnet30 allocates the AS's next /30: bottom-up from the aggregate base,
// stopping at childFloor (loopback range; carved child blocks).
func (a *ASInfo) subnet30() netaddr.Prefix {
	p := netaddr.MustPrefixFrom(a.Aggregate.Addr()+netaddr.Addr(a.nextSubnet*4), 30)
	a.nextSubnet++
	if a.nextSubnet*4 >= a.childFloor {
		panic(fmt.Sprintf("gen: AS%d out of subnets", a.Num))
	}
	return p
}

// loopback allocates the AS's next loopback /32 from the top 256 addresses
// of the aggregate (10.num.255.x in the flat plan).
func (a *ASInfo) loopback() netaddr.Addr {
	a.nextLo++
	if a.nextLo > 254 {
		panic(fmt.Sprintf("gen: AS%d out of loopbacks", a.Num))
	}
	return a.Aggregate.Addr() + netaddr.Addr(a.size()-256) + netaddr.Addr(a.nextLo)
}

// carveChild20 hands out the next /20 child block from the top of the
// aggregate, below everything already reserved. Hierarchical transits use
// it to assign their stub customers provider-aggregated space.
func (a *ASInfo) carveChild20() netaddr.Prefix {
	const childSize = 1 << 12
	if a.childFloor < childSize || a.childFloor-childSize < a.nextSubnet*4 {
		panic(fmt.Sprintf("gen: AS%d out of child blocks", a.Num))
	}
	a.childFloor -= childSize
	return netaddr.MustPrefixFrom(a.Aggregate.Addr()+netaddr.Addr(a.childFloor), 20)
}

// stratifiedProfiles deals out n transit/Tier-1 profiles whose vendor,
// MPLS, no-ttl-propagate and UHP shares match the survey fractions exactly
// (rounded), in shuffled order.
func stratifiedProfiles(p Params, n int, rng *rand.Rand) []Profile {
	profs := make([]Profile, n)
	share := func(f float64, of int) int { return int(math.Round(f * float64(of))) }

	// Vendors.
	order := rng.Perm(n)
	nc, nj, nm := share(p.CiscoFrac, n), share(p.JuniperFrac, n), share(p.MixedFrac, n)
	for i, idx := range order {
		v := VendorLegacy
		switch {
		case i < nc:
			v = VendorCisco
		case i < nc+nj:
			v = VendorJuniper
		case i < nc+nj+nm:
			v = VendorMixed
		}
		profs[idx].Vendor = v
	}
	for i := range profs {
		profs[i].Propagate = true
		profs[i].LDP = router.LDPAllPrefixes
		if profs[i].Vendor == VendorJuniper {
			profs[i].LDP = router.LDPHostRoutesOnly
		}
	}

	// MPLS, hiding, and UHP over fresh shuffles.
	order = rng.Perm(n)
	mpls := order[:share(p.MPLSFrac, n)]
	for _, idx := range mpls {
		profs[idx].MPLS = true
	}
	hide := rng.Perm(len(mpls))[:share(p.NoPropagateFrac, len(mpls))]
	for _, k := range hide {
		profs[mpls[k]].Propagate = false
	}
	uhp := rng.Perm(len(mpls))[:share(p.UHPFrac, len(mpls))]
	for _, k := range uhp {
		profs[mpls[k]].UHP = true
	}
	te := rng.Perm(len(mpls))[:share(p.TEFrac, len(mpls))]
	for _, k := range te {
		profs[mpls[k]].TE = true
	}
	return profs
}

// stubProfile draws a vendor for a plain-IP stub AS.
func (in *Internet) stubProfile(p Params) Profile {
	prof := Profile{Propagate: true, LDP: router.LDPAllPrefixes}
	v := in.rng.Float64()
	switch {
	case v < p.CiscoFrac:
		prof.Vendor = VendorCisco
	case v < p.CiscoFrac+p.JuniperFrac:
		prof.Vendor = VendorJuniper
		prof.LDP = router.LDPHostRoutesOnly
	case v < p.CiscoFrac+p.JuniperFrac+p.MixedFrac:
		prof.Vendor = VendorMixed
	default:
		prof.Vendor = VendorLegacy
	}
	return prof
}

// personalityFor picks a router OS per the AS vendor profile.
func personalityFor(rng *rand.Rand, prof Profile) (router.Personality, router.LDPPolicy) {
	switch prof.Vendor {
	case VendorCisco:
		return router.Cisco, router.LDPAllPrefixes
	case VendorJuniper:
		return router.Juniper, router.LDPHostRoutesOnly
	case VendorLegacy:
		return router.Legacy, router.LDPAllPrefixes
	default: // mixed: per-router draw, Cisco-leaning, with a legacy tail
		v := rng.Float64()
		switch {
		case v < 0.45:
			return router.Cisco, router.LDPAllPrefixes
		case v < 0.80:
			return router.Juniper, router.LDPHostRoutesOnly
		case v < 0.90:
			return router.JunosE, router.LDPHostRoutesOnly
		default:
			return router.Legacy, router.LDPAllPrefixes
		}
	}
}

func (in *Internet) buildAS(p Params, num uint32, tier Tier, prof Profile) *ASInfo {
	x := in.rng.Float64()
	y := in.rng.Float64()
	as := in.newAS(num, prof, aggregateOf(num), x, y)
	in.buildASTopology(in.rng, p, as, tier)
	return as
}

// newAS creates an AS record, registers it in the world's indexes, and
// reserves the top 256 addresses of its aggregate for loopbacks. The
// hierarchical builder calls it directly with provider-carved aggregates
// and precomputed coordinates.
func (in *Internet) newAS(num uint32, prof Profile, agg netaddr.Prefix, x, y float64) *ASInfo {
	as := &ASInfo{
		Num:       num,
		Name:      fmt.Sprintf("AS%d", num),
		Aggregate: agg,
		Profile:   prof,
		X:         x,
		Y:         y,
		index:     int32(len(in.ASes)),
	}
	as.childFloor = as.size() - 256
	in.ASes = append(in.ASes, as)
	in.asByNum[as.Num] = as
	return as
}

// buildASTopology populates the AS with its two-level PoP topology,
// drawing the router counts and every construction decision from rng.
func (in *Internet) buildASTopology(rng *rand.Rand, p Params, as *ASInfo, tier Tier) {
	var nCore, nEdge int
	switch tier {
	case Tier1:
		nCore, nEdge = rngRange(rng, p.Tier1Core), rngRange(rng, p.Tier1Edge)
	case Transit:
		nCore, nEdge = rngRange(rng, p.TransitCore), rngRange(rng, p.TransitEdge)
	default:
		nCore, nEdge = rngRange(rng, p.StubRouters), 0
	}
	in.buildASRouters(rng, p, as, nCore, nEdge, tier)
}

// buildASRouters is buildASTopology with the router counts decided by the
// caller: the lazy stub planner draws a stub's count from the build rng
// up front (so the universe is enumerable without construction) and
// replays the construction later from the stub's own seeded rng.
func (in *Internet) buildASRouters(rng *rand.Rand, p Params, as *ASInfo, nCore, nEdge int, tier Tier) {
	num := as.Num

	mk := func(kind string, i int) *router.Router {
		pers, pol := personalityFor(rng, as.Profile)
		cfg := router.Config{
			TTLPropagate: as.Profile.Propagate,
			MPLSEnabled:  as.Profile.MPLS,
			UHP:          as.Profile.UHP,
			LDP:          pol,
		}
		r := router.New(fmt.Sprintf("as%d-%s%d", num, kind, i), pers, cfg)
		r.SetASN(num)
		lo := r.SetLoopback(as.loopback())
		in.Net.AddNode(r)
		in.register(lo, r, as)
		return r
	}
	for i := 0; i < nCore; i++ {
		as.Core = append(as.Core, mk("p", i))
	}
	for i := 0; i < nEdge; i++ {
		as.Edge = append(as.Edge, mk("pe", i))
	}

	// Core ring (+ a chord when large enough).
	wire := func(a, b *router.Router) {
		sub := as.subnet30()
		ai := a.AddIface(fmt.Sprintf("to-%s", b.Name()), sub.Nth(1), sub)
		bi := b.AddIface(fmt.Sprintf("to-%s", a.Name()), sub.Nth(2), sub)
		in.Net.Connect(ai, bi, delay(rng, p))
		in.register(ai, a, as)
		in.register(bi, b, as)
	}
	switch {
	case tier == Stub:
		// Stubs with several routers: a chain.
		for i := 1; i < len(as.Core); i++ {
			wire(as.Core[i-1], as.Core[i])
		}
	case len(as.Core) == 2:
		wire(as.Core[0], as.Core[1])
	case len(as.Core) > 2:
		for i := 0; i < len(as.Core); i++ {
			wire(as.Core[i], as.Core[(i+1)%len(as.Core)])
		}
		if len(as.Core) >= 5 {
			wire(as.Core[0], as.Core[len(as.Core)/2])
		}
	}
	// Edges attach to one or two core routers.
	for i, e := range as.Edge {
		wire(e, as.Core[i%len(as.Core)])
		if rng.Float64() < 0.4 && len(as.Core) > 1 {
			wire(e, as.Core[(i+1)%len(as.Core)])
		}
	}
}

func (in *Internet) register(ifc *netsim.Iface, r *router.Router, as *ASInfo) {
	if err := in.Net.RegisterIface(ifc); err != nil {
		panic(err) // generator bug: address allocation never collides
	}
	idx, ok := in.Net.IndexOf(r)
	if !ok {
		panic(fmt.Sprintf("gen: register before AddNode for %s", r.Name()))
	}
	rec := addrRec{addr: ifc.Addr, node: idx, as: as.index}
	// Post-build fault-ins record into the materializing stub's local
	// index: the shared addrRecs slice is referenced by every snapshot
	// replica and must never grow after Build seals it. Every address a
	// fault-in registers (stub interfaces, both ends of its provider
	// cross-links) lives inside the stub's own /20, so lookupAddr finds
	// the records by block.
	if lz := in.lazy; lz != nil && lz.recSink != nil {
		*lz.recSink = append(*lz.recSink, rec)
		return
	}
	in.addrRecs = append(in.addrRecs, rec)
}

// borderOf picks a border-capable router (edge router when present).
func borderOf(rng *rand.Rand, as *ASInfo) *router.Router {
	if len(as.Edge) > 0 {
		return as.Edge[rng.Intn(len(as.Edge))]
	}
	return as.Core[rng.Intn(len(as.Core))]
}

// interASDelay returns the propagation delay of a link between two ASes:
// the base jitter plus a geographic component when regional delays are on.
func interASDelay(rng *rand.Rand, p Params, a, b *ASInfo) time.Duration {
	d := delay(rng, p)
	if !p.Regional || p.RegionDelay <= 0 {
		return d
	}
	dx, dy := a.X-b.X, a.Y-b.Y
	dist := math.Sqrt(dx*dx+dy*dy) / math.Sqrt2 // normalized to [0,1]
	return d + time.Duration(dist*float64(p.RegionDelay))
}

func (in *Internet) connectASes(p Params, a, b *ASInfo, rel bgp.Relationship) *bgp.Session {
	// The subnet comes from the lexically-smaller AS's space; ownership
	// only matters for IP-to-AS mapping noise, which the campaign models
	// separately. (The hierarchical builder overrides this for stub
	// links, which must be numbered out of the stub's provider-carved
	// block.)
	owner := a
	if b.Num < a.Num {
		owner = b
	}
	return in.connectASesOwned(in.rng, p, a, b, rel, owner)
}

func (in *Internet) connectASesOwned(rng *rand.Rand, p Params, a, b *ASInfo, rel bgp.Relationship, owner *ASInfo) *bgp.Session {
	ra, rb := borderOf(rng, a), borderOf(rng, b)
	sub := owner.subnet30()
	ai := ra.AddIface(fmt.Sprintf("x-as%d", b.Num), sub.Nth(1), sub)
	bi := rb.AddIface(fmt.Sprintf("x-as%d", a.Num), sub.Nth(2), sub)
	in.Net.Connect(ai, bi, interASDelay(rng, p, a, b))
	in.register(ai, ra, a)
	in.register(bi, rb, b)
	return &bgp.Session{A: ra, B: rb, AIf: ai, BIf: bi, Rel: rel}
}

func (in *Internet) attachVP(rng *rand.Rand, p Params, as *ASInfo, idx int) {
	sub := as.subnet30()
	r := as.Core[rng.Intn(len(as.Core))]
	host := netsim.NewHost(fmt.Sprintf("vp%d", idx), sub.Nth(2), sub)
	ri := r.AddIface(fmt.Sprintf("to-vp%d", idx), sub.Nth(1), sub)
	in.Net.AddNode(host)
	in.Net.Connect(ri, host.If, delay(rng, p))
	in.register(ri, r, as)
	if err := in.Net.RegisterIface(host.If); err != nil {
		panic(err)
	}
	in.VPs = append(in.VPs, &VP{Host: host, Prober: probe.New(in.Net, host), AS: as})
}

// addTETunnels overlays one or two RSVP-TE detour LSPs on an AS that,
// per the survey, runs RSVP-TE in addition to LDP. Each tunnel steers the
// traffic for a random egress LER's loopback along an explicit path
// through an extra core router — off the IGP shortest path, the way
// operators balance load. The tunnel replaces the ingress's LDP binding
// for that FEC, so revelation heuristics encounter the paper's "more
// advanced configurations" (Sec. 3.4).
func (in *Internet) addTETunnels(as *ASInfo) {
	if len(as.Edge) < 2 || len(as.Core) < 2 {
		return
	}
	tunnels := 1 + in.rng.Intn(2)
	for t := 0; t < tunnels; t++ {
		ingress := as.Edge[in.rng.Intn(len(as.Edge))]
		egress := as.Edge[in.rng.Intn(len(as.Edge))]
		via := as.Core[in.rng.Intn(len(as.Core))]
		if ingress == egress {
			continue
		}
		path := in.explicitPath(as, ingress, via, egress)
		if path == nil {
			continue
		}
		tn := &rsvpte.Tunnel{
			Name: fmt.Sprintf("as%d-te%d", as.Num, t),
			Path: path,
			FEC:  netaddr.HostPrefix(egress.Loopback().Addr),
			UHP:  as.Profile.UHP,
		}
		// Signal failures (non-adjacent walk artifacts) just skip the
		// tunnel; the base LDP LSP keeps working. Recorded before the
		// attempt: even a rejected signal may have allocated labels, and
		// churn repair must replay the allocation sequence exactly.
		as.teTunnels = append(as.teTunnels, tn)
		_ = rsvpte.Signal(tn)
	}
}

// explicitPath concatenates the IGP walks ingress->via->egress, returning
// nil when the joined walk revisits a router (no loops allowed in an LSP).
func (in *Internet) explicitPath(as *ASInfo, ingress, via, egress *router.Router) []*router.Router {
	first := in.walk(as, ingress, via)
	second := in.walk(as, via, egress)
	if first == nil || second == nil {
		return nil
	}
	path := append(first, second[1:]...)
	seen := map[*router.Router]bool{}
	for _, r := range path {
		if seen[r] {
			return nil
		}
		seen[r] = true
	}
	if len(path) < 2 {
		return nil
	}
	return path
}

// walk follows the AS's SPF first hops from a to b, inclusive.
func (in *Internet) walk(as *ASInfo, a, b *router.Router) []*router.Router {
	if a == b {
		return []*router.Router{a}
	}
	lo := b.Loopback()
	if lo == nil {
		return nil
	}
	path := []*router.Router{a}
	cur := a
	for steps := 0; steps < 64; steps++ {
		hops := as.SPF().NextHops[cur][lo.Prefix]
		if len(hops) == 0 || hops[0].Via == nil {
			return nil
		}
		cur = hops[0].Via
		path = append(path, cur)
		if cur == b {
			return path
		}
	}
	return nil
}
