package gen_test

// Wire-codec round-trip and corruption tests. External test package so
// the rungs come from internal/experiments (which imports gen).

import (
	"errors"
	"testing"

	"wormhole/internal/experiments"
	"wormhole/internal/gen"
	"wormhole/internal/wirefmt"
)

func roundTrip(t *testing.T, scale experiments.Scale, stride int) {
	t.Helper()
	in, err := gen.Build(scale.Params(2024))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := in.EncodeWire()
	if err != nil {
		t.Fatal(err)
	}
	out, err := gen.DecodeWire(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.EquivalenceDiff(in, out, stride); err != nil {
		t.Fatalf("decode(encode(x)) diverges from x at %v: %v", scale, err)
	}
	// The decoded fabric must itself be replicable — campaign workers
	// snapshot it for their replica pools.
	snap, err := out.Snapshot()
	if err != nil {
		t.Fatalf("decoded fabric does not snapshot: %v", err)
	}
	if err := gen.EquivalenceDiff(in, snap, stride*3); err != nil {
		t.Fatalf("snapshot of decoded fabric diverges: %v", err)
	}
}

func TestWireRoundTripSmall(t *testing.T)  { roundTrip(t, experiments.Small, 7) }
func TestWireRoundTripMedium(t *testing.T) { roundTrip(t, experiments.Medium, 41) }

func TestWireRoundTripLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("scale tier")
	}
	roundTrip(t, experiments.Large, 499)
}

// TestWireCorruption pins the acceptance contract: a corrupted section
// decodes to a checksum error, never a panic, and truncation is an error
// too.
func TestWireCorruption(t *testing.T) {
	in, err := gen.Build(experiments.Small.Params(7))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := in.EncodeWire()
	if err != nil {
		t.Fatal(err)
	}

	// A bit flip in the middle of the blob lands in a section payload
	// (the nodes section dominates): decode must report the checksum.
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0x40
	if _, err := gen.DecodeWire(bad); err == nil {
		t.Fatal("corrupted blob decoded without error")
	} else {
		var ce *wirefmt.ChecksumError
		if !errors.As(err, &ce) {
			t.Fatalf("corrupted payload: want *wirefmt.ChecksumError, got %v", err)
		}
	}

	// Every single-byte flip must fail decode: all bytes are covered by
	// the header or a checksummed section. Sampled stride keeps it fast.
	for off := 0; off < len(blob); off += 4093 {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0xff
		if _, err := gen.DecodeWire(bad); err == nil {
			t.Fatalf("flip at %d decoded without error", off)
		}
	}

	// Truncation at any point is an error, not a panic.
	for _, cut := range []int{0, 3, 6, len(blob) / 3, len(blob) - 1} {
		if _, err := gen.DecodeWire(blob[:cut]); err == nil {
			t.Fatalf("truncated blob (%d bytes) decoded without error", cut)
		}
	}
}
