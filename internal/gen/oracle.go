package gen

// The snapshot structural-equality oracle, shared by the scale goldens,
// the wire-codec round-trip tests, and the distributed-engine smoke: two
// fabrics are equivalent when they expose the same address universe, the
// same AS metadata, and the same sampled traceroute behaviour from every
// vantage point. It lives in the package (not a _test file) so the root
// scale tests, the gen wire tests, and external tooling all compare
// replicas with one definition of "same world".

import (
	"fmt"
	"strings"
)

// SampleTraces renders a deterministic sample of traceroutes — every
// stride-th registered address from every VP — as a comparable string.
// It probes the fabric (prober counters and the virtual clock advance),
// but trace *content* is probing-order-invariant, so sampling one fabric
// never changes what a sample of another returns.
func SampleTraces(in *Internet, stride int) string {
	var sb strings.Builder
	addrs := in.RouterAddrs()
	for vi, vp := range in.VPs {
		for i := 0; i < len(addrs); i += stride {
			tr := vp.Prober.Traceroute(addrs[i])
			fmt.Fprintf(&sb, "vp%d %s reached=%v ", vi, addrs[i], tr.Reached)
			for _, h := range tr.Hops {
				fmt.Fprintf(&sb, "[%d %s rttl=%d t=%d c=%d mpls=%v]",
					h.ProbeTTL, h.Addr, h.ReplyTTL, h.ICMPType, h.ICMPCode, h.MPLS)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// EquivalenceDiff compares a replica against its source and returns a
// description of the first divergence, or nil when the fabrics are
// structurally and behaviourally equivalent under the stride sample.
func EquivalenceDiff(src, rep *Internet, stride int) error {
	aa, bb := src.RouterAddrs(), rep.RouterAddrs()
	if len(aa) != len(bb) {
		return fmt.Errorf("addr counts differ: %d vs %d", len(aa), len(bb))
	}
	for i := range aa {
		if aa[i] != bb[i] {
			return fmt.Errorf("addr %d differs: %s vs %s", i, aa[i], bb[i])
		}
	}
	if len(src.ASes) != len(rep.ASes) {
		return fmt.Errorf("AS counts differ: %d vs %d", len(src.ASes), len(rep.ASes))
	}
	for i, as := range src.ASes {
		ns := rep.ASes[i]
		if as.Num != ns.Num || as.Profile != ns.Profile || as.Aggregate != ns.Aggregate ||
			len(as.Core) != len(ns.Core) || len(as.Edge) != len(ns.Edge) {
			return fmt.Errorf("AS %d (AS%d) metadata differs", i, as.Num)
		}
	}
	if len(src.VPs) != len(rep.VPs) {
		return fmt.Errorf("VP counts differ: %d vs %d", len(src.VPs), len(rep.VPs))
	}
	want := SampleTraces(src, stride)
	got := SampleTraces(rep, stride)
	if got != want {
		wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
		for i := 0; i < len(wl) && i < len(gl); i++ {
			if wl[i] != gl[i] {
				return fmt.Errorf("trace %d diverges:\n  want %s\n  got  %s", i, wl[i], gl[i])
			}
		}
		return fmt.Errorf("trace counts diverge: %d vs %d lines", len(wl), len(gl))
	}
	return nil
}
