package gen

import (
	"testing"
	"time"

	"wormhole/internal/router"
)

func smallParams(seed int64) Params {
	p := DefaultParams(seed)
	p.NumTier1 = 2
	p.NumTransit = 4
	p.NumStub = 8
	p.NumVPs = 4
	return p
}

func TestBuildSmallInternet(t *testing.T) {
	in, err := Build(smallParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.ASes) != 14 {
		t.Fatalf("AS count = %d", len(in.ASes))
	}
	if len(in.VPs) != 4 {
		t.Fatalf("VP count = %d", len(in.VPs))
	}
	// Every AS got routers, an SPF, and an aggregate.
	for _, as := range in.ASes {
		if len(as.Routers()) == 0 {
			t.Errorf("%s has no routers", as.Name)
		}
		if as.SPF() == nil {
			t.Errorf("%s has no SPF", as.Name)
		}
		if as.Profile.Tier == Stub && as.Profile.MPLS {
			t.Errorf("%s: stub with MPLS", as.Name)
		}
	}
}

func TestGeneratedInternetRoutes(t *testing.T) {
	in, err := Build(smallParams(11))
	if err != nil {
		t.Fatal(err)
	}
	// Every VP must reach a sample of router loopbacks across the world.
	reached, total := 0, 0
	for _, vp := range in.VPs {
		for _, as := range in.ASes {
			r := as.Routers()[0]
			lo := r.Loopback()
			if lo == nil {
				continue
			}
			total++
			if _, ok := vp.Prober.Ping(lo.Addr, 64); ok {
				reached++
			}
		}
	}
	if total == 0 || reached < total*9/10 {
		t.Fatalf("reachability %d/%d", reached, total)
	}
}

func TestGeneratedTracesTerminate(t *testing.T) {
	in, err := Build(smallParams(13))
	if err != nil {
		t.Fatal(err)
	}
	vp := in.VPs[0]
	ok := 0
	addrs := in.RouterAddrs()
	for i := 0; i < len(addrs); i += 7 {
		tr := vp.Prober.Traceroute(addrs[i])
		if tr.Reached {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("no trace reached its destination")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Build(smallParams(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallParams(3))
	if err != nil {
		t.Fatal(err)
	}
	aa, bb := a.RouterAddrs(), b.RouterAddrs()
	if len(aa) != len(bb) {
		t.Fatalf("addr counts differ: %d vs %d", len(aa), len(bb))
	}
	for i := range aa {
		if aa[i] != bb[i] {
			t.Fatalf("addr %d differs: %s vs %s", i, aa[i], bb[i])
		}
	}
	for i := range a.ASes {
		if a.ASes[i].Profile != b.ASes[i].Profile {
			t.Fatalf("AS %d profile differs", i)
		}
	}
}

func TestCloneReplaysBuild(t *testing.T) {
	in, err := Build(smallParams(3))
	if err != nil {
		t.Fatal(err)
	}
	replica, err := in.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if replica == in || replica.Net == in.Net {
		t.Fatal("Clone returned a shared world, want an independent replica")
	}
	if in.Params() != smallParams(3) {
		t.Fatal("Params() does not round-trip the build parameters")
	}
	aa, bb := in.RouterAddrs(), replica.RouterAddrs()
	if len(aa) != len(bb) {
		t.Fatalf("addr counts differ: %d vs %d", len(aa), len(bb))
	}
	for i := range aa {
		if aa[i] != bb[i] {
			t.Fatalf("addr %d differs: %s vs %s", i, aa[i], bb[i])
		}
	}
	if len(replica.VPs) != len(in.VPs) {
		t.Fatalf("VP counts differ: %d vs %d", len(replica.VPs), len(in.VPs))
	}
	for i := range in.VPs {
		if in.VPs[i].Host.Addr() != replica.VPs[i].Host.Addr() {
			t.Fatalf("VP %d address differs", i)
		}
	}
	// Independent fabrics: probing the replica advances only its clock.
	before := in.Net.Now()
	replica.VPs[0].Prober.Traceroute(replica.VPs[1].Host.Addr())
	if in.Net.Now() != before {
		t.Fatal("probing the replica advanced the original fabric's clock")
	}
	if replica.Net.Now() == 0 {
		t.Fatal("replica fabric did not run")
	}
}

func TestProfilesFollowSurveyShares(t *testing.T) {
	p := DefaultParams(17)
	p.NumTier1 = 3
	p.NumTransit = 60 // more samples for the shares
	p.NumStub = 10
	p.NumVPs = 2
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	mpls, invisible, total := 0, 0, 0
	for _, as := range in.ASes {
		if as.Profile.Tier == Stub {
			continue
		}
		total++
		if as.Profile.MPLS {
			mpls++
			if !as.Profile.Propagate {
				invisible++
			}
		}
	}
	mplsFrac := float64(mpls) / float64(total)
	if mplsFrac < 0.7 || mplsFrac > 1.0 {
		t.Errorf("MPLS fraction = %.2f, want ~0.87", mplsFrac)
	}
	invFrac := float64(invisible) / float64(mpls)
	if invFrac < 0.25 || invFrac > 0.75 {
		t.Errorf("no-ttl-propagate fraction = %.2f, want ~0.48", invFrac)
	}
}

func TestGroundTruthResolver(t *testing.T) {
	in, err := Build(smallParams(5))
	if err != nil {
		t.Fatal(err)
	}
	as := in.ASes[0]
	r := as.Routers()[0]
	lo := r.Loopback()
	name, asn, ok := in.Resolve(lo.Addr)
	if !ok || name != r.Name() || asn != as.Num {
		t.Errorf("Resolve(%s) = %s,%d,%v", lo.Addr, name, asn, ok)
	}
	if _, _, ok := in.Resolve(0xdeadbeef); ok {
		t.Error("resolved a nonexistent address")
	}
}

func TestVendorPersonalities(t *testing.T) {
	p := smallParams(23)
	p.CiscoFrac, p.JuniperFrac, p.MixedFrac = 0, 1, 0 // force Juniper
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, as := range in.ASes {
		for _, r := range as.Routers() {
			if r.Personality().Name != router.Juniper.Name {
				t.Fatalf("%s: personality %s, want juniper", r.Name(), r.Personality().Name)
			}
			if r.Config().MPLSEnabled && r.Config().LDP != router.LDPHostRoutesOnly {
				t.Fatalf("%s: Juniper router without host-routes LDP", r.Name())
			}
		}
	}
}

func TestTEDetoursInstalled(t *testing.T) {
	p := smallParams(77)
	p.MPLSFrac, p.TEFrac = 1.0, 1.0
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	teASes := 0
	for _, as := range in.ASes {
		if as.Profile.TE {
			teASes++
		}
	}
	if teASes == 0 {
		t.Fatal("no TE ASes despite TEFrac=1")
	}
	// The world must still route end to end with detour tunnels overlaid.
	vp := in.VPs[0]
	reached := 0
	for _, as := range in.ASes {
		lo := as.Routers()[0].Loopback()
		if lo == nil {
			continue
		}
		if _, ok := vp.Prober.Ping(lo.Addr, 64); ok {
			reached++
		}
	}
	if reached < len(in.ASes)*8/10 {
		t.Fatalf("reachability collapsed with TE tunnels: %d/%d", reached, len(in.ASes))
	}
}

func TestCampaignSurvivesTETunnels(t *testing.T) {
	// Full campaign over a TE-heavy world: revelation may fail more often
	// (the paper's advanced configurations) but must not break.
	p := smallParams(79)
	p.MPLSFrac, p.NoPropagateFrac, p.TEFrac = 1.0, 0.8, 1.0
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// Smoke: trace across the world from every VP.
	for _, vp := range in.VPs {
		for i, dst := range in.RouterAddrs() {
			if i%9 != 0 {
				continue
			}
			vp.Prober.Traceroute(dst)
		}
	}
}

func TestRegionalDelays(t *testing.T) {
	p := smallParams(991)
	p.Regional, p.RegionDelay = true, 50*time.Millisecond
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// RTTs across the world must spread well beyond the base link jitter.
	vp := in.VPs[0]
	var min, max time.Duration
	for _, as := range in.ASes {
		lo := as.Routers()[0].Loopback()
		if lo == nil {
			continue
		}
		if reply, ok := vp.Prober.Ping(lo.Addr, 64); ok {
			if min == 0 || reply.RTT < min {
				min = reply.RTT
			}
			if reply.RTT > max {
				max = reply.RTT
			}
		}
	}
	if max-min < 20*time.Millisecond {
		t.Errorf("regional delays too flat: min=%v max=%v", min, max)
	}

	// Flat mode stays flat-ish.
	p2 := smallParams(991)
	p2.Regional = false
	in2, err := Build(p2)
	if err != nil {
		t.Fatal(err)
	}
	vp2 := in2.VPs[0]
	var max2 time.Duration
	for _, as := range in2.ASes {
		lo := as.Routers()[0].Loopback()
		if lo == nil {
			continue
		}
		if reply, ok := vp2.Prober.Ping(lo.Addr, 64); ok && reply.RTT > max2 {
			max2 = reply.RTT
		}
	}
	if max2 >= max {
		t.Errorf("flat world (%v) not faster than regional (%v)", max2, max)
	}
}

// TestInBandControlPlaneEquivalence builds the same world twice — once
// with centralized control-plane computation, once with in-band OSPF and
// LDP message exchange — and requires identical traceroute observations.
func TestInBandControlPlaneEquivalence(t *testing.T) {
	p1 := smallParams(4040)
	p1.TEFrac = 0 // TE placement consumes RNG draws after the control plane
	central, err := Build(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p1
	p2.InBandControlPlane = true
	inband, err := Build(p2)
	if err != nil {
		t.Fatal(err)
	}

	addrsC, addrsI := central.RouterAddrs(), inband.RouterAddrs()
	if len(addrsC) != len(addrsI) {
		t.Fatalf("address universes differ: %d vs %d", len(addrsC), len(addrsI))
	}
	vpC, vpI := central.VPs[0], inband.VPs[0]
	diffs := 0
	for k := 0; k < len(addrsC); k += 5 {
		tc := vpC.Prober.Traceroute(addrsC[k])
		ti := vpI.Prober.Traceroute(addrsI[k])
		if tc.Reached != ti.Reached || len(tc.Hops) != len(ti.Hops) {
			diffs++
			continue
		}
		for j := range tc.Hops {
			if tc.Hops[j].Addr != ti.Hops[j].Addr {
				diffs++
				break
			}
		}
	}
	if diffs != 0 {
		t.Errorf("%d traces differ between centralized and in-band control planes", diffs)
	}
}
