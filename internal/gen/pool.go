package gen

import "sync"

// This file implements the replica pool: built replicas of an Internet
// are kept across parallel campaigns so steady-state runs pay no replica
// construction at all. Validity is keyed to netsim's topology generation
// counter — a control-plane mutation on the source drops the whole pool
// (the replicas no longer mirror it), and a mutation on a replica while
// leased drops that replica at release (it no longer mirrors anything).
// Pooled replicas retain their probers' counters, virtual clocks, and
// flow caches; campaign accounting is delta-based throughout, so reuse is
// observationally identical to a fresh clone for deterministic probing.

// replicaPool is embedded by value in Internet.
type replicaPool struct {
	mu sync.Mutex
	// entries are idle replicas in stable order: acquire pops from the
	// front, release appends in worker order, so worker i sees the same
	// replica (and its warm flow cache) run after run.
	entries []*Internet
	// leased maps a replica handed out by Acquire to its topology
	// generation at that moment and the pool epoch it was leased under;
	// ReleaseReplicas compares both to detect replicas mutated during the
	// campaign and replicas that outlived a pool reseed.
	leased map[*Internet]lease
	// srcGen and rebuild key the pool's validity: the source fabric's
	// topology generation when the pool was (re)seeded, and the replica
	// mode the entries were built with. epoch increments on every reseed.
	srcGen  uint64
	rebuild bool
	seeded  bool
	epoch   uint64
}

// lease records what must still hold at release for a replica to re-enter
// the pool.
type lease struct {
	gen   uint64 // the replica's own TopoGen at acquire
	epoch uint64 // the pool epoch at acquire
}

// AcquireReplicas returns n independent replicas of this Internet, reusing
// pooled ones when neither the source nor the replica has mutated since
// they were built, and building the rest (concurrently) via Rebuild when
// rebuild is set, Clone otherwise. Replicas come back in stable order —
// slot i holds the same replica across successive acquisitions — and must
// be returned with ReleaseReplicas.
func (in *Internet) AcquireReplicas(n int, rebuild bool) ([]*Internet, error) {
	p := &in.pool
	p.mu.Lock()
	cur := in.Net.TopoGen()
	if !p.seeded || p.srcGen != cur || p.rebuild != rebuild {
		p.entries = nil
		p.srcGen = cur
		p.rebuild = rebuild
		p.seeded = true
		p.epoch++
		// Leases from earlier epochs can never re-enter the pool (the
		// epoch check at release drops them), so purge them now instead of
		// letting an abandoned lease pin its replica in the map forever —
		// the leak a crashed worker used to leave behind.
		for r, l := range p.leased {
			if l.epoch != p.epoch {
				delete(p.leased, r)
			}
		}
	}
	if p.leased == nil {
		p.leased = make(map[*Internet]lease)
	}
	out := make([]*Internet, 0, n)
	for len(out) < n && len(p.entries) > 0 {
		r := p.entries[0]
		p.entries = p.entries[1:]
		p.leased[r] = lease{gen: r.Net.TopoGen(), epoch: p.epoch}
		out = append(out, r)
	}
	need := n - len(out)
	p.mu.Unlock()
	if need == 0 {
		return out, nil
	}

	built := make([]*Internet, need)
	errs := make([]error, need)
	var wg sync.WaitGroup
	for i := 0; i < need; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if rebuild {
				built[i], errs[i] = in.Rebuild()
			} else {
				built[i], errs[i] = in.Clone()
			}
		}(i)
	}
	wg.Wait()

	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	for i, r := range built {
		if errs[i] != nil {
			if err == nil {
				err = errs[i]
			}
			continue
		}
		if err != nil {
			// A sibling build failed; keep the survivor for next time.
			p.entries = append(p.entries, r)
			continue
		}
		p.leased[r] = lease{gen: r.Net.TopoGen(), epoch: p.epoch}
		out = append(out, r)
	}
	if err != nil {
		// Return the already-leased replicas too; the campaign is not
		// starting.
		for _, r := range out {
			delete(p.leased, r)
			p.entries = append(p.entries, r)
		}
		return nil, err
	}
	return out, nil
}

// ReleaseReplicas returns leased replicas to the pool in the given order.
// A replica whose fabric mutated while leased is dropped: it no longer
// mirrors the source topology.
func (in *Internet) ReleaseReplicas(rs []*Internet) {
	p := &in.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range rs {
		l, ok := p.leased[r]
		if !ok {
			continue
		}
		delete(p.leased, r)
		if l.epoch != p.epoch || r.Net.TopoGen() != l.gen || r.Net.ChurnDeviant() {
			// TopoGen catches whole-fabric flushes; ChurnDeviant catches a
			// churn schedule that somehow ended without restoring the
			// pristine control plane (scoped invalidations leave TopoGen
			// untouched by design).
			continue
		}
		p.entries = append(p.entries, r)
	}
}

// InvalidateReplicas discards leased replicas without returning them to
// the pool: the error path for a worker that died or left its replica in
// an unknown state. Unlike ReleaseReplicas it never re-pools — the lease
// is simply forgotten, so the pool slot is reclaimed instead of stranded.
func (in *Internet) InvalidateReplicas(rs []*Internet) {
	p := &in.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range rs {
		delete(p.leased, r)
	}
}

// LeasedReplicas reports how many replicas are currently out on lease —
// the observable the leak regression pins: after every campaign (error
// paths included) it must return to zero.
func (in *Internet) LeasedReplicas() int {
	p := &in.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.leased)
}
