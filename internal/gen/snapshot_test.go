package gen

import (
	"fmt"
	"strings"
	"testing"

	"wormhole/internal/probe"
)

// dumpTraces renders every VP's traceroute to every router address — the
// complete data-plane behaviour an Internet replica must reproduce.
func dumpTraces(in *Internet) string {
	var sb strings.Builder
	for vi, vp := range in.VPs {
		for _, dst := range in.RouterAddrs() {
			tr := vp.Prober.Traceroute(dst)
			fmt.Fprintf(&sb, "vp%d %s reached=%v ", vi, dst, tr.Reached)
			writeHops(&sb, tr)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func writeHops(sb *strings.Builder, tr *probe.Trace) {
	for _, h := range tr.Hops {
		fmt.Fprintf(sb, "[%d %s rttl=%d t=%d c=%d mpls=%v]",
			h.ProbeTTL, h.Addr, h.ReplyTTL, h.ICMPType, h.ICMPCode, h.MPLS)
	}
}

// TestSnapshotEquivalence is the contract test for the structural
// snapshot: the original, a Snapshot replica, and a Rebuild replica must
// produce byte-identical traceroute behaviour over the whole address
// universe, and the snapshot must be fully independent of the original.
func TestSnapshotEquivalence(t *testing.T) {
	in, err := Build(smallParams(3))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := in.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := in.Rebuild()
	if err != nil {
		t.Fatal(err)
	}

	aa, bb := in.RouterAddrs(), snap.RouterAddrs()
	if len(aa) != len(bb) {
		t.Fatalf("addr counts differ: %d vs %d", len(aa), len(bb))
	}
	for i := range aa {
		if aa[i] != bb[i] {
			t.Fatalf("addr %d differs: %s vs %s", i, aa[i], bb[i])
		}
	}
	for i, as := range in.ASes {
		ns := snap.ASes[i]
		if as.Num != ns.Num || as.Profile != ns.Profile || len(as.Core) != len(ns.Core) || len(as.Edge) != len(ns.Edge) {
			t.Fatalf("AS %d metadata differs", i)
		}
		if ns.SPF() == nil != (as.SPF() == nil) {
			t.Fatalf("AS %d SPF presence differs", i)
		}
	}
	if got := snap.ASByNum(in.ASes[0].Num); got != snap.ASes[0] {
		t.Fatal("snapshot ASByNum index not rebuilt")
	}

	want := dumpTraces(in)
	if got := dumpTraces(snap); got != want {
		t.Errorf("snapshot traces diverge from original:\n%s", firstTraceDiff(want, got))
	}
	if got := dumpTraces(rebuilt); got != want {
		t.Errorf("rebuild traces diverge from original:\n%s", firstTraceDiff(want, got))
	}

	// Independence: tearing MPLS out of every original router must not
	// change the snapshot's view of the world.
	for _, as := range in.ASes {
		for _, r := range as.Core {
			r.ClearMPLS()
		}
		for _, r := range as.Edge {
			r.ClearMPLS()
		}
	}
	if got := dumpTraces(snap); got != want {
		t.Errorf("mutating the original changed the snapshot:\n%s", firstTraceDiff(want, got))
	}
}

func firstTraceDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want %s\n  got  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count: want %d, got %d", len(wl), len(gl))
}

// TestSnapshotRejectsInBand verifies the fallback: a world converged with
// an in-band control plane cannot be structurally snapshot (routers hold
// ControlHandler closures), so Snapshot must refuse and Clone must route
// through Rebuild instead.
func TestSnapshotRejectsInBand(t *testing.T) {
	p := smallParams(4)
	p.InBandControlPlane = true
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Snapshot(); err == nil {
		t.Fatal("Snapshot accepted an in-band world")
	}
	replica, err := in.Clone()
	if err != nil {
		t.Fatalf("Clone did not fall back to Rebuild: %v", err)
	}
	if replica.Net == in.Net {
		t.Fatal("Clone returned a shared fabric")
	}
}
