package gen

// The snapshot wire codec: a versioned, zero-reflection binary format
// that carries a built Internet across a process boundary. EncodeWire
// serializes exactly the state a structural Snapshot() copies — router
// table arenas, interface records, links, hosts, AS metadata, the
// ground-truth address index, and the lazy-stub universe plan — as
// length-prefixed sections with per-section CRC-32C checksums (see
// internal/wirefmt). DecodeWire reconstructs a live fabric from the blob
// without replaying generation: the decoder sizes the same CloneArena a
// snapshot uses from a counting prelude, so a decode is a few slab
// allocations plus one linear parse, and the result is observationally
// identical to a Snapshot() replica of the encoded fabric.
//
// What never crosses the wire, mirroring Snapshot(): ControlHandler
// closures (encode refuses in-band worlds), queued events (encode
// refuses a non-quiescent fabric), route caches, the flow-trajectory
// cache, prober state (probers are created fresh, then configured by the
// campaign), and SPF results — replicas recompute those on demand, which
// is observationally identical and keeps the blob proportional to the
// data plane.
//
// Section layout (every section is [u32 id][u64 len][payload][u32 crc]):
//
//	header   magic "WSN1" + u16 version
//	1 params    the exact Build() input
//	2 netbasis  fabric seed, virtual clock, event seq, fabric counters
//	3 nodes     counting prelude + per-node records, fabric order
//	4 links     endpoint interface ids + delay/up/loss/rate/occupancy
//	5 regifaces registered interface ids, address-sorted
//	6 ases      AS metadata, router indices, TE history, lazy records
//	7 vps       host index, AS index, prober knobs
//	8 addrrecs  the sealed ground-truth address index
//	9 lazy      stub descriptors, span index, resident bitset
//
// Interface identity on the wire is positional: walking Nodes() in
// fabric order and, per router, its data interfaces then its loopback
// (per host, its single interface) yields the global interface id space
// used by sections 4 and 5. Node identity is the fabric node index, the
// same clone invariant the address index already relies on.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/probe"
	"wormhole/internal/router"
	"wormhole/internal/rsvpte"
	"wormhole/internal/wirefmt"
)

const (
	wireMagic   = 0x314e5357 // "WSN1" little-endian
	wireVersion = 1

	secParams    = 1
	secNetBasis  = 2
	secNodes     = 3
	secLinks     = 4
	secRegIfaces = 5
	secASes      = 6
	secVPs       = 7
	secAddrRecs  = 8
	secLazy      = 9
)

var errBadWire = errors.New("gen: corrupt snapshot encoding")

// nodeKind discriminates node records in the nodes section.
const (
	nodeRouter = 0
	nodeHost   = 1
)

// EncodeWire serializes the fabric. Like Snapshot, it refuses worlds
// with in-band control planes (handler closures cannot cross a process)
// and fabrics with queued events.
func (in *Internet) EncodeWire() ([]byte, error) {
	if !in.Net.Quiescent() {
		return nil, errors.New("gen: cannot encode a fabric with queued events")
	}
	var stats router.WireStats
	nLinks := len(in.Net.Links())
	for _, n := range in.Net.Nodes() {
		if r, ok := n.(*router.Router); ok {
			if r.ControlHandler != nil {
				return nil, fmt.Errorf("gen: cannot encode %s: in-band control plane attached (use Rebuild on the worker)", r.Name())
			}
			stats.Count(r)
		}
	}

	// Pre-size the buffer from the counting pass: growth reallocation is
	// the one avoidable cost at Large (~50MB) scale.
	est := 1<<16 +
		stats.Routers*120 + stats.Ifaces*28 + stats.Locals*4 +
		stats.Routes*9 + stats.NHops*8 + stats.Binds*10 + stats.LHops*10 +
		stats.Unders*4 + stats.LFIB*10 + stats.TrieNodes*13 +
		nLinks*40 + len(in.addrRecs)*12 + len(in.ASes)*96
	if lz := in.lazy; lz != nil {
		est += len(lz.descs)*36 + len(lz.spans)*8 + len(lz.resident)*8
	}
	w := &wirefmt.Writer{Buf: make([]byte, 0, est)}
	w.U32(wireMagic)
	w.U16(wireVersion)

	// 1: params — every Build() input scalar, in struct order.
	mark := w.BeginSection(secParams)
	p := in.params
	w.I64(p.Seed)
	w.I64(int64(p.NumTier1))
	w.I64(int64(p.NumTransit))
	w.I64(int64(p.NumStub))
	for _, pair := range [...][2]int{p.Tier1Core, p.Tier1Edge, p.TransitCore, p.TransitEdge, p.StubRouters} {
		w.I64(int64(pair[0]))
		w.I64(int64(pair[1]))
	}
	for _, f := range [...]float64{p.MPLSFrac, p.NoPropagateFrac, p.UHPFrac, p.TEFrac,
		p.CiscoFrac, p.JuniperFrac, p.MixedFrac, p.TransitPeerProb} {
		w.U64(math.Float64bits(f))
	}
	w.I64(int64(p.NumVPs))
	w.I64(int64(p.MinDelay))
	w.I64(int64(p.MaxDelay))
	w.Bool(p.Regional)
	w.I64(int64(p.RegionDelay))
	w.Bool(p.InBandControlPlane)
	w.Bool(p.Hierarchical)
	w.Bool(p.LazyStubs)
	w.EndSection(mark)

	// 2: netbasis.
	mark = w.BeginSection(secNetBasis)
	clock, seq, fstats := in.Net.WireBasis()
	w.I64(in.Net.Seed())
	w.I64(int64(clock))
	w.U64(seq)
	w.U64(fstats.Deliveries)
	w.U64(fstats.BudgetExhausted)
	w.U64(fstats.DroppedEvents)
	w.EndSection(mark)

	// 3: nodes. The global interface id space is defined by this walk.
	nodes := in.Net.Nodes()
	ifID := make(map[*netsim.Iface]int32, stats.Ifaces)
	mark = w.BeginSection(secNodes)
	w.U32(uint32(len(nodes)))
	stats.Append(w)
	for _, n := range nodes {
		switch v := n.(type) {
		case *router.Router:
			w.U8(nodeRouter)
			v.AppendWire(w)
			for _, ifc := range v.Ifaces() {
				ifID[ifc] = int32(len(ifID))
			}
			if lo := v.Loopback(); lo != nil {
				ifID[lo] = int32(len(ifID))
			}
		case *netsim.Host:
			w.U8(nodeHost)
			w.String(v.Name())
			w.U8(v.InitTTL)
			w.String(v.If.Name)
			netaddr.AppendAddr(w, v.If.Addr)
			netaddr.AppendPrefix(w, v.If.Prefix)
			ifID[v.If] = int32(len(ifID))
		default:
			return nil, fmt.Errorf("gen: cannot encode node %q of type %T", n.Name(), n)
		}
	}
	w.EndSection(mark)

	// 4: links, fabric order.
	mark = w.BeginSection(secLinks)
	w.U32(uint32(nLinks))
	for _, l := range in.Net.Links() {
		a, b := l.Endpoints()
		ia, okA := ifID[a]
		ib, okB := ifID[b]
		if !okA || !okB {
			return nil, fmt.Errorf("gen: link endpoint not owned by any node (%v-%v)", a.Addr, b.Addr)
		}
		w.I32(ia)
		w.I32(ib)
		w.I64(int64(l.Delay))
		w.Bool(l.Up)
		w.U64(math.Float64bits(l.LossProb))
		w.I64(l.BytesPerSec)
		busy := l.BusyUntil()
		w.I64(int64(busy[0]))
		w.I64(int64(busy[1]))
	}
	w.EndSection(mark)

	// 5: registered interfaces, sorted by address so the blob is
	// deterministic (the registry is a map).
	mark = w.BeginSection(secRegIfaces)
	regs := in.Net.RegisteredIfaces()
	sort.Slice(regs, func(i, j int) bool { return regs[i].Addr < regs[j].Addr })
	w.U32(uint32(len(regs)))
	for _, ifc := range regs {
		id, ok := ifID[ifc]
		if !ok {
			return nil, fmt.Errorf("gen: registered interface %v not owned by any node", ifc.Addr)
		}
		w.I32(id)
	}
	w.EndSection(mark)

	// 6: ASes.
	mark = w.BeginSection(secASes)
	w.U32(uint32(len(in.ASes)))
	nodeIdx := func(r *router.Router) (int32, error) {
		i, ok := in.Net.IndexOf(r)
		if !ok {
			return 0, fmt.Errorf("gen: router %s not on the fabric", r.Name())
		}
		return i, nil
	}
	for _, as := range in.ASes {
		w.U32(as.Num)
		w.String(as.Name)
		w.U8(uint8(as.Profile.Tier))
		w.U8(uint8(as.Profile.Vendor))
		w.Bool(as.Profile.MPLS)
		w.Bool(as.Profile.Propagate)
		w.Bool(as.Profile.UHP)
		w.Bool(as.Profile.TE)
		w.U8(uint8(as.Profile.LDP))
		w.U64(math.Float64bits(as.X))
		w.U64(math.Float64bits(as.Y))
		netaddr.AppendPrefix(w, as.Aggregate)
		w.I32(as.index)
		w.U32(as.childFloor)
		w.U32(as.nextSubnet)
		w.U32(as.nextLo)
		for _, side := range [2][]*router.Router{as.Core, as.Edge} {
			w.U32(uint32(len(side)))
			for _, r := range side {
				i, err := nodeIdx(r)
				if err != nil {
					return nil, err
				}
				w.I32(i)
			}
		}
		// SPF state is never shipped: a replica recomputes from its own
		// routers on demand, which Compute() makes deterministic.
		w.Bool(as.spf != nil || as.spfMode != spfEager)
		w.U32(uint32(len(as.teTunnels)))
		for _, tn := range as.teTunnels {
			w.String(tn.Name)
			netaddr.AppendPrefix(w, tn.FEC)
			w.Bool(tn.UHP)
			w.U32(uint32(len(tn.Path)))
			for _, r := range tn.Path {
				i, err := nodeIdx(r)
				if err != nil {
					return nil, err
				}
				w.I32(i)
			}
		}
		w.U32(uint32(len(as.lazyRecs)))
		for _, rec := range as.lazyRecs {
			netaddr.AppendAddr(w, rec.addr)
			w.I32(rec.node)
			w.I32(rec.as)
		}
	}
	w.EndSection(mark)

	// 7: VPs.
	mark = w.BeginSection(secVPs)
	w.U32(uint32(len(in.VPs)))
	for _, vp := range in.VPs {
		hi, ok := in.Net.IndexOf(vp.Host)
		if !ok {
			return nil, fmt.Errorf("gen: VP host %q not on the fabric", vp.Host.Name())
		}
		w.I32(hi)
		w.I32(vp.AS.index)
		w.U8(uint8(vp.Prober.Method))
		w.U8(vp.Prober.FirstTTL)
		w.U8(vp.Prober.MaxTTL)
		w.I32(int32(vp.Prober.GapLimit))
		w.I32(int32(vp.Prober.Attempts))
		w.U16(vp.Prober.FlowID)
	}
	w.EndSection(mark)

	// 8: the ground-truth address index.
	mark = w.BeginSection(secAddrRecs)
	w.U32(uint32(len(in.addrRecs)))
	for _, rec := range in.addrRecs {
		netaddr.AppendAddr(w, rec.addr)
		w.I32(rec.node)
		w.I32(rec.as)
	}
	w.EndSection(mark)

	// 9: the lazy universe plan.
	mark = w.BeginSection(secLazy)
	if lz := in.lazy; lz != nil {
		w.Bool(true)
		w.Bool(lz.deferred)
		w.U32(uint32(len(lz.descs)))
		for _, d := range lz.descs {
			w.I64(d.seed)
			w.I32(d.asIndex)
			w.I32(d.prov[0])
			w.I32(d.prov[1])
			w.I32(d.nProv)
			w.I32(d.nCore)
			w.I32(d.vp)
		}
		w.U32(uint32(len(lz.spans)))
		for _, sp := range lz.spans {
			netaddr.AppendAddr(w, sp.start)
			w.I32(sp.si)
		}
		w.U32(uint32(len(lz.resident)))
		for _, word := range lz.resident {
			w.U64(word)
		}
		w.I64(int64(lz.residentStubs))
		w.I64(int64(lz.residentRouters))
		w.I64(int64(lz.coreRouters))
		w.I64(int64(lz.stubRouters))
	} else {
		w.Bool(false)
	}
	w.EndSection(mark)

	return w.Buf, nil
}

// wireCount reads a u32 count bounded by what the payload can hold (each
// element costs at least min bytes), so corrupt counts fail instead of
// driving a giant allocation.
func wireCount(rd *wirefmt.Reader, min int) int {
	n := int(rd.U32())
	if n < 0 || n > rd.Len()/min {
		rd.Fail(errBadWire)
		return 0
	}
	return n
}

// DecodeWire reconstructs a live fabric from an EncodeWire blob. Any
// corruption — truncation, a flipped bit, an out-of-range index —
// surfaces as an error (checksum failures as a *wirefmt.ChecksumError);
// the decoder never panics on hostile bytes.
func DecodeWire(buf []byte) (*Internet, error) {
	rd := wirefmt.NewReader(buf)
	if m := rd.U32(); m != wireMagic {
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("gen: not a snapshot blob (magic %#x)", m)
	}
	if v := rd.U16(); v != wireVersion {
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("gen: snapshot wire version %d not supported (want %d)", v, wireVersion)
	}

	// 1: params.
	sec := rd.Section(secParams)
	var p Params
	p.Seed = sec.I64()
	p.NumTier1 = int(sec.I64())
	p.NumTransit = int(sec.I64())
	p.NumStub = int(sec.I64())
	for _, pair := range [...]*[2]int{&p.Tier1Core, &p.Tier1Edge, &p.TransitCore, &p.TransitEdge, &p.StubRouters} {
		pair[0] = int(sec.I64())
		pair[1] = int(sec.I64())
	}
	for _, f := range [...]*float64{&p.MPLSFrac, &p.NoPropagateFrac, &p.UHPFrac, &p.TEFrac,
		&p.CiscoFrac, &p.JuniperFrac, &p.MixedFrac, &p.TransitPeerProb} {
		*f = math.Float64frombits(sec.U64())
	}
	p.NumVPs = int(sec.I64())
	p.MinDelay = time.Duration(sec.I64())
	p.MaxDelay = time.Duration(sec.I64())
	p.Regional = sec.Bool()
	p.RegionDelay = time.Duration(sec.I64())
	p.InBandControlPlane = sec.Bool()
	p.Hierarchical = sec.Bool()
	p.LazyStubs = sec.Bool()
	if err := sec.Err(); err != nil {
		return nil, err
	}

	// 2: netbasis.
	sec = rd.Section(secNetBasis)
	seed := sec.I64()
	clock := time.Duration(sec.I64())
	seq := sec.U64()
	var fstats netsim.FabricStats
	fstats.Deliveries = sec.U64()
	fstats.BudgetExhausted = sec.U64()
	fstats.DroppedEvents = sec.U64()
	if err := sec.Err(); err != nil {
		return nil, err
	}
	net := netsim.New(seed)
	net.SetWireBasis(clock, seq, fstats)

	out := &Internet{
		Net:    net,
		params: p,
		rng:    rand.New(rand.NewSource(p.Seed)),
	}

	// 3: nodes.
	sec = rd.Section(secNodes)
	nNodes := wireCount(sec, 1)
	stats := router.DecodeWireStats(sec)
	if err := sec.Err(); err != nil {
		return nil, err
	}
	arena := router.NewDecodeArena(stats)
	ifs := make([]*netsim.Iface, 0, stats.Ifaces)
	for i := 0; i < nNodes; i++ {
		switch kind := sec.U8(); kind {
		case nodeRouter:
			r := router.DecodeRouter(sec, arena)
			if err := sec.Err(); err != nil {
				return nil, err
			}
			net.AddNode(r)
			ifs = append(ifs, r.Ifaces()...)
			if lo := r.Loopback(); lo != nil {
				ifs = append(ifs, lo)
			}
		case nodeHost:
			name := sec.String()
			initTTL := sec.U8()
			ifName := sec.String()
			addr := netaddr.DecodeAddr(sec)
			prefix := netaddr.DecodePrefix(sec)
			if err := sec.Err(); err != nil {
				return nil, err
			}
			h := netsim.NewHost(name, addr, prefix)
			h.InitTTL = initTTL
			h.If.Name = ifName
			net.AddNode(h)
			ifs = append(ifs, h.If)
		default:
			return nil, fmt.Errorf("gen: unknown node kind %d in snapshot blob", kind)
		}
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}

	ifByID := func(rd *wirefmt.Reader, id int32) *netsim.Iface {
		if id < 0 || int(id) >= len(ifs) {
			rd.Fail(errBadWire)
			return nil
		}
		return ifs[id]
	}

	// 4: links.
	sec = rd.Section(secLinks)
	nLinks := wireCount(sec, 42)
	net.ReserveLinks(nLinks)
	for i := 0; i < nLinks; i++ {
		a := ifByID(sec, sec.I32())
		b := ifByID(sec, sec.I32())
		delay := time.Duration(sec.I64())
		up := sec.Bool()
		loss := math.Float64frombits(sec.U64())
		rate := sec.I64()
		busy := [2]time.Duration{time.Duration(sec.I64()), time.Duration(sec.I64())}
		if sec.Err() != nil {
			break
		}
		l := net.Connect(a, b, delay)
		l.Up = up
		l.LossProb = loss
		l.BytesPerSec = rate
		l.SetBusyUntil(busy)
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}

	// 5: registered interfaces.
	sec = rd.Section(secRegIfaces)
	nReg := wireCount(sec, 4)
	for i := 0; i < nReg; i++ {
		ifc := ifByID(sec, sec.I32())
		if sec.Err() != nil {
			break
		}
		if err := net.RegisterIface(ifc); err != nil {
			return nil, err
		}
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}

	routerAt := func(rd *wirefmt.Reader, idx int32) *router.Router {
		if idx < 0 || int(idx) >= len(net.Nodes()) {
			rd.Fail(errBadWire)
			return nil
		}
		r, ok := net.Nodes()[idx].(*router.Router)
		if !ok {
			rd.Fail(errBadWire)
			return nil
		}
		return r
	}

	// 6: ASes.
	sec = rd.Section(secASes)
	nAS := wireCount(sec, 40)
	asSlab := make([]ASInfo, nAS)
	out.ASes = make([]*ASInfo, 0, nAS)
	out.asByNum = make(map[uint32]*ASInfo, nAS)
	for i := 0; i < nAS; i++ {
		as := &asSlab[i]
		as.Num = sec.U32()
		as.Name = sec.String()
		as.Profile.Tier = Tier(sec.U8())
		as.Profile.Vendor = Vendor(sec.U8())
		as.Profile.MPLS = sec.Bool()
		as.Profile.Propagate = sec.Bool()
		as.Profile.UHP = sec.Bool()
		as.Profile.TE = sec.Bool()
		as.Profile.LDP = router.LDPPolicy(sec.U8())
		as.X = math.Float64frombits(sec.U64())
		as.Y = math.Float64frombits(sec.U64())
		as.Aggregate = netaddr.DecodePrefix(sec)
		as.index = sec.I32()
		as.childFloor = sec.U32()
		as.nextSubnet = sec.U32()
		as.nextLo = sec.U32()
		for _, side := range [2]*[]*router.Router{&as.Core, &as.Edge} {
			n := wireCount(sec, 4)
			if n > 0 {
				*side = make([]*router.Router, 0, n)
				for j := 0; j < n; j++ {
					r := routerAt(sec, sec.I32())
					if r == nil {
						break
					}
					*side = append(*side, r)
				}
			}
		}
		if sec.Bool() {
			as.spfMode = spfRecompute
		}
		nTE := wireCount(sec, 10)
		for j := 0; j < nTE; j++ {
			tn := &rsvpte.Tunnel{}
			tn.Name = sec.String()
			tn.FEC = netaddr.DecodePrefix(sec)
			tn.UHP = sec.Bool()
			nPath := wireCount(sec, 4)
			tn.Path = make([]*router.Router, 0, nPath)
			for k := 0; k < nPath; k++ {
				r := routerAt(sec, sec.I32())
				if r == nil {
					break
				}
				tn.Path = append(tn.Path, r)
			}
			as.teTunnels = append(as.teTunnels, tn)
		}
		nRec := wireCount(sec, 12)
		for j := 0; j < nRec; j++ {
			as.lazyRecs = append(as.lazyRecs, addrRec{
				addr: netaddr.DecodeAddr(sec),
				node: sec.I32(),
				as:   sec.I32(),
			})
		}
		out.ASes = append(out.ASes, as)
		out.asByNum[as.Num] = as
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}

	// 7: VPs.
	sec = rd.Section(secVPs)
	nVP := wireCount(sec, 14)
	for i := 0; i < nVP; i++ {
		hi := sec.I32()
		asIdx := sec.I32()
		method := probe.Method(sec.U8())
		firstTTL := sec.U8()
		maxTTL := sec.U8()
		gapLimit := int(sec.I32())
		attempts := int(sec.I32())
		flowID := sec.U16()
		if sec.Err() != nil {
			break
		}
		if hi < 0 || int(hi) >= len(net.Nodes()) || asIdx < 0 || int(asIdx) >= len(out.ASes) {
			return nil, errBadWire
		}
		host, ok := net.Nodes()[hi].(*netsim.Host)
		if !ok {
			return nil, errBadWire
		}
		pr := probe.New(net, host)
		pr.Method = method
		pr.FirstTTL = firstTTL
		pr.MaxTTL = maxTTL
		pr.GapLimit = gapLimit
		pr.Attempts = attempts
		pr.FlowID = flowID
		out.VPs = append(out.VPs, &VP{Host: host, Prober: pr, AS: out.ASes[asIdx]})
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}

	// 8: address index.
	sec = rd.Section(secAddrRecs)
	nRec := wireCount(sec, 12)
	out.addrRecs = make([]addrRec, 0, nRec)
	for i := 0; i < nRec; i++ {
		out.addrRecs = append(out.addrRecs, addrRec{
			addr: netaddr.DecodeAddr(sec),
			node: sec.I32(),
			as:   sec.I32(),
		})
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}

	// 9: lazy plan.
	sec = rd.Section(secLazy)
	if sec.Bool() {
		lz := &lazyState{sealed: true}
		lz.deferred = sec.Bool()
		nDesc := wireCount(sec, 32)
		lz.descs = make([]stubDesc, 0, nDesc)
		for i := 0; i < nDesc; i++ {
			lz.descs = append(lz.descs, stubDesc{
				seed:    sec.I64(),
				asIndex: sec.I32(),
				prov:    [2]int32{sec.I32(), sec.I32()},
				nProv:   sec.I32(),
				nCore:   sec.I32(),
				vp:      sec.I32(),
			})
		}
		nSpan := wireCount(sec, 8)
		lz.spans = make([]stubSpan, 0, nSpan)
		for i := 0; i < nSpan; i++ {
			lz.spans = append(lz.spans, stubSpan{start: netaddr.DecodeAddr(sec), si: sec.I32()})
		}
		nWord := wireCount(sec, 8)
		lz.resident = make(bitset, 0, nWord)
		for i := 0; i < nWord; i++ {
			lz.resident = append(lz.resident, sec.U64())
		}
		lz.residentStubs = int(sec.I64())
		lz.residentRouters = int(sec.I64())
		lz.coreRouters = int(sec.I64())
		lz.stubRouters = int(sec.I64())
		out.lazy = lz
		if lz.deferred {
			net.SetFaultInHook(out.faultInAddr)
		}
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
