package gen

import (
	"fmt"
	"math/rand"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/probe"
	"wormhole/internal/router"
	"wormhole/internal/rsvpte"
)

// Snapshot builds an independent replica of this Internet by structurally
// deep-copying the built state: every router (FIB, LFIB, bindings,
// personality, config, counters), link, host, SPF result, and the
// ground-truth address index. No control-plane computation is replayed, so
// a snapshot costs O(state) rather than O(convergence) — the fast path for
// parallel campaign workers.
//
// Probers are created fresh on the replica (counters zeroed), matching what
// a generator replay would produce; campaign workers reconfigure them from
// the campaign config anyway.
//
// Worlds converged with InBandControlPlane cannot be snapshot: their
// routers hold ControlHandler closures over source-side protocol state.
// Use Rebuild (or Clone, which falls back automatically) for those.
func (in *Internet) Snapshot() (*Internet, error) {
	for _, n := range in.Net.Nodes() {
		if r, ok := n.(*router.Router); ok && r.ControlHandler != nil {
			return nil, fmt.Errorf("gen: cannot snapshot %s: in-band control plane attached (use Rebuild)", r.Name())
		}
	}
	c, err := in.Net.BeginSnapshot()
	if err != nil {
		return nil, err
	}
	srcRouters := make([]*router.Router, 0, len(in.Net.Nodes()))
	for _, n := range in.Net.Nodes() {
		if r, ok := n.(*router.Router); ok {
			srcRouters = append(srcRouters, r)
		}
	}
	// One arena serves every router: table data for the whole replica
	// lands in a handful of contiguous slabs.
	arena := router.NewCloneArena(srcRouters)
	routers := make(map[*router.Router]*router.Router, len(srcRouters))
	for _, n := range in.Net.Nodes() {
		switch v := n.(type) {
		case *router.Router:
			routers[v] = v.SnapshotInto(c, arena)
		case *netsim.Host:
			v.Snapshot(c)
		default:
			return nil, fmt.Errorf("gen: cannot snapshot node %q of type %T", n.Name(), n)
		}
	}
	if err := c.Finish(); err != nil {
		return nil, err
	}

	out := &Internet{
		Net:     c.Net(),
		asByNum: make(map[uint32]*ASInfo, len(in.ASes)),
		params:  in.params,
		rng:     rand.New(rand.NewSource(in.params.Seed)),
	}
	rmap := func(r *router.Router) *router.Router { return routers[r] }
	for _, as := range in.ASes {
		na := &ASInfo{
			Num:        as.Num,
			Name:       as.Name,
			Profile:    as.Profile,
			X:          as.X,
			Y:          as.Y,
			Aggregate:  as.Aggregate,
			nextSubnet: as.nextSubnet,
			nextLo:     as.nextLo,
		}
		na.Core = make([]*router.Router, len(as.Core))
		for i, r := range as.Core {
			na.Core[i] = routers[r]
		}
		na.Edge = make([]*router.Router, len(as.Edge))
		for i, r := range as.Edge {
			na.Edge[i] = routers[r]
		}
		if spf := as.SPF(); spf != nil {
			// Deferred: campaign workers never read SPF state, and an eager
			// Remap would cost as much as cloning the AS's router tables.
			// The closure keeps the source result and mapping tables alive,
			// which the replica's lifetime bounds anyway.
			na.spfThunk = func() *igp.Result { return spf.Remap(rmap, c.Iface) }
		}
		for _, tn := range as.teTunnels {
			// Remap the recorded TE signalling history so churn repair on
			// the replica replays the same label allocations.
			nt := &rsvpte.Tunnel{Name: tn.Name, FEC: tn.FEC, UHP: tn.UHP}
			nt.Path = make([]*router.Router, len(tn.Path))
			for i, r := range tn.Path {
				nt.Path[i] = routers[r]
			}
			na.teTunnels = append(na.teTunnels, nt)
		}
		out.ASes = append(out.ASes, na)
		out.asByNum[na.Num] = na
	}
	// Deferred like the SPF results: workers resolve addresses against the
	// source world, so the remapped index is materialized only if read.
	out.addrThunk = func() map[netaddr.Addr]AddrInfo {
		m := make(map[netaddr.Addr]AddrInfo, len(in.addrs()))
		for a, info := range in.addrs() {
			m[a] = AddrInfo{Router: routers[info.Router], AS: out.asByNum[info.AS.Num]}
		}
		return m
	}
	for _, vp := range in.VPs {
		host, ok := c.NodeOf(vp.Host).(*netsim.Host)
		if !ok {
			return nil, fmt.Errorf("gen: VP host %q missing from snapshot", vp.Host.Name())
		}
		pr := probe.New(out.Net, host)
		pr.Method = vp.Prober.Method
		pr.FirstTTL = vp.Prober.FirstTTL
		pr.MaxTTL = vp.Prober.MaxTTL
		pr.GapLimit = vp.Prober.GapLimit
		pr.Attempts = vp.Prober.Attempts
		pr.FlowID = vp.Prober.FlowID
		out.VPs = append(out.VPs, &VP{Host: host, Prober: pr, AS: out.asByNum[vp.AS.Num]})
	}
	return out, nil
}

// Rebuild builds an independent replica by replaying the generator with
// the original parameters — the validation oracle for Snapshot, and the
// only replication path for in-band-converged worlds. Post-build mutations
// to the original are NOT carried over.
func (in *Internet) Rebuild() (*Internet, error) { return Build(in.params) }
