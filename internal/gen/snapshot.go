package gen

import (
	"fmt"
	"math/rand"

	"wormhole/internal/netsim"
	"wormhole/internal/probe"
	"wormhole/internal/router"
	"wormhole/internal/rsvpte"
)

// snapCtx carries the old→new pointer translation of one structural
// snapshot for ASes that defer their SPF remap. One context is shared by
// every deferred AS of the snapshot, so the per-AS cost is two pointer
// stores — no closures, no per-AS allocations.
type snapCtx struct {
	router func(*router.Router) *router.Router
	iface  func(*netsim.Iface) *netsim.Iface
}

// Snapshot builds an independent replica of this Internet by structurally
// deep-copying the built state: every router (FIB, LFIB, bindings,
// personality, config, counters), link, host, SPF result, and the
// ground-truth address index. No control-plane computation is replayed, so
// a snapshot costs O(state) rather than O(convergence) — the fast path for
// parallel campaign workers.
//
// Replica ASInfo records and their Core/Edge pointer tables are carved
// from slabs sized in one pass, mirroring router.CloneArena: a snapshot of
// a large fabric allocates a handful of arrays, not O(ASes) objects.
//
// Probers are created fresh on the replica (counters zeroed), matching what
// a generator replay would produce; campaign workers reconfigure them from
// the campaign config anyway.
//
// Worlds converged with InBandControlPlane cannot be snapshot: their
// routers hold ControlHandler closures over source-side protocol state.
// Use Rebuild (or Clone, which falls back automatically) for those.
func (in *Internet) Snapshot() (*Internet, error) {
	for _, n := range in.Net.Nodes() {
		if r, ok := n.(*router.Router); ok && r.ControlHandler != nil {
			return nil, fmt.Errorf("gen: cannot snapshot %s: in-band control plane attached (use Rebuild)", r.Name())
		}
	}
	c, err := in.Net.BeginSnapshot()
	if err != nil {
		return nil, err
	}
	srcRouters := make([]*router.Router, 0, len(in.Net.Nodes()))
	for _, n := range in.Net.Nodes() {
		if r, ok := n.(*router.Router); ok {
			srcRouters = append(srcRouters, r)
		}
	}
	// One arena serves every router: table data for the whole replica
	// lands in a handful of contiguous slabs.
	arena := router.NewCloneArena(srcRouters)
	routers := make(map[*router.Router]*router.Router, len(srcRouters))
	for _, n := range in.Net.Nodes() {
		switch v := n.(type) {
		case *router.Router:
			routers[v] = v.SnapshotInto(c, arena)
		case *netsim.Host:
			v.Snapshot(c)
		default:
			return nil, fmt.Errorf("gen: cannot snapshot node %q of type %T", n.Name(), n)
		}
	}
	if err := c.Finish(); err != nil {
		return nil, err
	}

	out := &Internet{
		Net:     c.Net(),
		asByNum: make(map[uint32]*ASInfo, len(in.ASes)),
		params:  in.params,
		rng:     rand.New(rand.NewSource(in.params.Seed)),
		// The ground-truth index holds node and AS indices, which are
		// clone invariants — shared by reference, never copied.
		addrRecs: in.addrRecs,
	}
	ctx := &snapCtx{
		router: func(r *router.Router) *router.Router { return routers[r] },
		iface:  c.Iface,
	}
	var nPtr int
	for _, as := range in.ASes {
		nPtr += len(as.Core) + len(as.Edge)
	}
	asSlab := make([]ASInfo, len(in.ASes))
	ptrSlab := make([]*router.Router, 0, nPtr)
	out.ASes = make([]*ASInfo, 0, len(in.ASes))
	for i, as := range in.ASes {
		na := &asSlab[i]
		na.Num = as.Num
		na.Name = as.Name
		na.Profile = as.Profile
		na.X, na.Y = as.X, as.Y
		na.Aggregate = as.Aggregate
		na.index = as.index
		na.childFloor = as.childFloor
		na.nextSubnet = as.nextSubnet
		na.nextLo = as.nextLo
		// Post-seal address records are per-stub and append-once at
		// materialization — shared by reference. (Node indices inside are
		// clone invariants, like addrRecs: the stub was resident at
		// snapshot time, so its nodes were cloned in order.)
		na.lazyRecs = as.lazyRecs

		start := len(ptrSlab)
		for _, r := range as.Core {
			ptrSlab = append(ptrSlab, routers[r])
		}
		na.Core = ptrSlab[start:len(ptrSlab):len(ptrSlab)]
		start = len(ptrSlab)
		for _, r := range as.Edge {
			ptrSlab = append(ptrSlab, routers[r])
		}
		na.Edge = ptrSlab[start:len(ptrSlab):len(ptrSlab)]

		// SPF state stays lazy on the replica: campaign workers never
		// read it, and an eager Remap costs as much as cloning the AS's
		// router tables. Materialized or remappable source results defer
		// to a remap through the shared context; streamed stubs that
		// dropped their build-time SPF recompute locally on demand.
		switch {
		case as.spf != nil || as.spfMode == spfRemap:
			na.spfMode = spfRemap
			na.snapSrc = as
			na.snapCtx = ctx
		case as.spfMode == spfRecompute:
			na.spfMode = spfRecompute
		}

		for _, tn := range as.teTunnels {
			// Remap the recorded TE signalling history so churn repair on
			// the replica replays the same label allocations.
			nt := &rsvpte.Tunnel{Name: tn.Name, FEC: tn.FEC, UHP: tn.UHP}
			nt.Path = make([]*router.Router, len(tn.Path))
			for i, r := range tn.Path {
				nt.Path[i] = routers[r]
			}
			na.teTunnels = append(na.teTunnels, nt)
		}
		out.ASes = append(out.ASes, na)
		out.asByNum[na.Num] = na
	}
	for _, vp := range in.VPs {
		host, ok := c.NodeOf(vp.Host).(*netsim.Host)
		if !ok {
			return nil, fmt.Errorf("gen: VP host %q missing from snapshot", vp.Host.Name())
		}
		pr := probe.New(out.Net, host)
		pr.Method = vp.Prober.Method
		pr.FirstTTL = vp.Prober.FirstTTL
		pr.MaxTTL = vp.Prober.MaxTTL
		pr.GapLimit = vp.Prober.GapLimit
		pr.Attempts = vp.Prober.Attempts
		pr.FlowID = vp.Prober.FlowID
		out.VPs = append(out.VPs, &VP{Host: host, Prober: pr, AS: out.asByNum[vp.AS.Num]})
	}
	if lz := in.lazy; lz != nil {
		// Descriptors and the block index are immutable universe state —
		// shared. The resident set is copied: replicas fault stubs in
		// independently of the source and of each other.
		out.lazy = &lazyState{
			descs:           lz.descs,
			spans:           lz.spans,
			deferred:        lz.deferred,
			sealed:          true,
			resident:        append(bitset(nil), lz.resident...),
			residentStubs:   lz.residentStubs,
			residentRouters: lz.residentRouters,
			coreRouters:     lz.coreRouters,
			stubRouters:     lz.stubRouters,
		}
		if lz.deferred {
			out.Net.SetFaultInHook(out.faultInAddr)
		}
	}
	return out, nil
}

// Rebuild builds an independent replica by replaying the generator with
// the original parameters — the validation oracle for Snapshot, and the
// only replication path for in-band-converged worlds. Post-build mutations
// to the original are NOT carried over.
func (in *Internet) Rebuild() (*Internet, error) { return Build(in.params) }
