package gen

import (
	"math"
	"math/rand"

	"wormhole/internal/igp"
	"wormhole/internal/ldp"
	"wormhole/internal/netsim"
	"wormhole/internal/router"
	"wormhole/internal/rsvpte"
)

// This file plans topology churn for a campaign: deterministic, seeded
// fail → reconverge → repair cycles over intra-AS core links, compiled
// into netsim.ChurnEvent schedules. The plan itself is symbolic — AS and
// ring-position indices, not router pointers — so the same plan resolves
// against the source fabric (serial campaigns, the uncached oracle) and
// against any structural replica (parallel workers): all of them fire
// identical mutations at identical probe boundaries, which is what the
// equivalence-under-churn golden test pins down.
//
// Each cycle models the lifecycle the paper's route-dynamics related work
// (Viger et al.; TARVOS's MPLS/RSVP-TE fast-recovery scenarios) observes
// from traceroute:
//
//   - fail: the link goes down and only its two endpoints learn new
//     routes (fast-reroute). The rest of the AS still forwards toward
//     the dead link — the window where micro-loops, transient blackholes
//     and anonymous hops live.
//   - reconverge: the whole AS recomputes on the degraded topology, the
//     label plane is rebuilt on it, and recorded RSVP-TE tunnels are
//     re-signalled along detour paths.
//   - repair: the link returns; a full recomputation plus an in-order
//     replay of the recorded LDP/RSVP-TE signalling restores the AS's
//     control plane byte-for-byte, so the fabric ends every schedule
//     content-pristine and pooled replicas stay warm.

// churnProbesPerTarget estimates the probes a campaign spends per target
// (traceroute, ping, revelation traces); it only shapes how event ticks
// spread over a shard, not which events fire.
const churnProbesPerTarget = 48

// churnCandidate is one failable link, symbolically: the ring link from
// Core[pos] to Core[(pos+1) % len(Core)] of AS index as. Ring links with
// at least three ring members never disconnect the AS.
type churnCandidate struct {
	as  int
	pos int
}

// ChurnPlan is a seeded churn scenario over an Internet's topology,
// resolvable against the source fabric or any structural replica.
type ChurnPlan struct {
	rate  float64
	seed  int64
	cands []churnCandidate
}

// BuildChurnPlan compiles the candidate set for an Internet. rate is the
// expected number of fail/reconverge/repair cycles per shard (fractions
// are sampled per shard). Returns nil — no churn — for a non-positive
// rate, an in-band-converged world (its control plane lives in handler
// closures the planner cannot re-run centrally), or a topology with no
// safely failable links.
func BuildChurnPlan(in *Internet, rate float64, seed int64) *ChurnPlan {
	if rate <= 0 || in.params.InBandControlPlane {
		return nil
	}
	p := &ChurnPlan{rate: rate, seed: seed}
	for ai, as := range in.ASes {
		if as.Profile.Tier == Stub || len(as.Core) < 3 {
			continue
		}
		for pos := range as.Core {
			p.cands = append(p.cands, churnCandidate{as: ai, pos: pos})
		}
	}
	if len(p.cands) == 0 {
		return nil
	}
	return p
}

// EventsFor compiles the schedule for one shard against the given fabric
// (the source Internet or a structural replica of it — AS and core
// ordering are identical by construction). stream individualizes the
// randomness per shard: the same (plan, stream, targets) triple always
// yields the same schedule, whichever fabric it resolves against, so a
// serial run and every parallel worker replaying shard si churn
// identically. Safe to call concurrently: each call owns a fresh rng.
func (p *ChurnPlan) EventsFor(in2 *Internet, stream, targets int) []netsim.ChurnEvent {
	if p == nil || len(p.cands) == 0 || targets <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.seed ^ int64(uint64(stream+1)*0x9e3779b97f4a7c15)))
	cycles := int(math.Floor(p.rate))
	if frac := p.rate - math.Floor(p.rate); frac > 0 && rng.Float64() < frac {
		cycles++
	}
	if cycles == 0 {
		return nil
	}
	span := uint64(targets) * churnProbesPerTarget
	// Failure windows span a meaningful fraction of the cycle's slot — a
	// handful of targets' worth of probes — so traces actually cross the
	// degraded topology; a few-probe window would close before any probe
	// toward an affected path runs.
	slot := span / uint64(cycles)
	gap := func() uint64 { return 3 + uint64(rng.Intn(4)) + slot/8 }
	var events []netsim.ChurnEvent
	tick := uint64(0)
	for cyc := 0; cyc < cycles; cyc++ {
		// Slot each cycle into its share of the probe span; ChurnEnd
		// force-fires whatever the shard was too short to reach, so
		// repair always lands.
		if lo := span * uint64(cyc) / uint64(cycles); tick < lo {
			tick = lo
		}
		tick += uint64(rng.Intn(5))
		failAt := tick
		tick += gap()
		reconvAt := tick
		tick += gap()
		repairAt := tick
		tick++
		cand := p.cands[rng.Intn(len(p.cands))]
		events = append(events, cycleEvents(in2, cand, failAt, reconvAt, repairAt)...)
	}
	return events
}

// cycleEvents resolves one symbolic candidate against a fabric and
// builds its fail/reconverge/repair event triple.
func cycleEvents(in2 *Internet, cand churnCandidate, failAt, reconvAt, repairAt uint64) []netsim.ChurnEvent {
	as := in2.ASes[cand.as]
	a := as.Core[cand.pos]
	b := as.Core[(cand.pos+1)%len(as.Core)]
	link := linkBetween(a, b)
	if link == nil {
		return nil
	}
	scope := asNodes(as)
	return []netsim.ChurnEvent{
		{
			Tick: failAt,
			Kind: "fail",
			Dev:  1,
			// The whole AS may deviate before the window closes (the
			// reconvergence inside it rewires every router), so the
			// deviance scope is the AS even though fail itself only
			// touches the endpoints.
			DevScope: scope,
			// The endpoints must be evicted even if the fast-reroute
			// computation fails: the down link drops packets regardless.
			EvictScope: []netsim.Node{a, b},
			Apply: func() {
				link.Up = false
				// Fast-reroute: only the endpoints learn the detour; the
				// rest of the AS keeps forwarding into the failure.
				dom := &igp.Domain{Routers: as.Routers(), InstallOn: []*router.Router{a, b}}
				_, _ = dom.Compute()
			},
		},
		{
			Tick: reconvAt,
			Kind: "reconverge",
			Apply: func() {
				dom := &igp.Domain{Routers: as.Routers()}
				res, err := dom.Compute()
				if err != nil {
					return
				}
				rebuildMPLS(as, res, true)
			},
		},
		{
			Tick:     repairAt,
			Kind:     "repair",
			Dev:      -1,
			DevScope: scope,
			// Every flow that crossed the AS during the deviance window
			// must be evicted here, whether or not repair's own
			// mutations reach its routers.
			EvictScope: scope,
			Apply: func() {
				link.Up = true
				dom := &igp.Domain{Routers: as.Routers()}
				res, err := dom.Compute()
				if err != nil {
					return
				}
				rebuildMPLS(as, res, false)
			},
		},
	}
}

// rebuildMPLS rebuilds the AS's label plane on the given SPF result:
// clear every router's label state (which also resets the label
// allocators), rebuild LDP, then replay the recorded RSVP-TE signalling
// — along IGP detours when detour is set, along the original explicit
// paths otherwise. With the pristine topology the replay is
// byte-identical to the original build: ldp.Build allocates in a
// deterministic order from the SPF content, and the tunnel list holds
// every original signalling attempt in order.
func rebuildMPLS(as *ASInfo, res *igp.Result, detour bool) {
	if !as.Profile.MPLS {
		return
	}
	routers := as.Routers()
	for _, r := range routers {
		r.ClearMPLS()
	}
	ldp.Build(routers, res)
	for _, tn := range as.teTunnels {
		if !detour {
			_ = rsvpte.Signal(tn)
			continue
		}
		path := walkSPF(res, tn.Path[0], tn.Path[len(tn.Path)-1])
		if path == nil {
			// No usable detour (egress unreachable on the degraded
			// topology): the tunnel stays down and its FEC falls back to
			// the LDP LSP — or blackholes, like real FRR misses.
			continue
		}
		_ = rsvpte.Reroute(tn, path)
	}
}

// walkSPF follows a result's first hops from a to b, inclusive — the
// explicit-path walk of the generator, but over an arbitrary SPF result
// instead of the AS's pristine one.
func walkSPF(res *igp.Result, a, b *router.Router) []*router.Router {
	if a == b {
		return nil
	}
	lo := b.Loopback()
	if lo == nil {
		return nil
	}
	path := []*router.Router{a}
	cur := a
	for steps := 0; steps < 64; steps++ {
		hops := res.NextHops[cur][lo.Prefix]
		if len(hops) == 0 || hops[0].Via == nil {
			return nil
		}
		cur = hops[0].Via
		path = append(path, cur)
		if cur == b {
			return path
		}
	}
	return nil
}

// linkBetween returns the link joining two routers, or nil.
func linkBetween(a, b *router.Router) *netsim.Link {
	for _, ifc := range a.Ifaces() {
		remote := ifc.Remote()
		if remote == nil {
			continue
		}
		if r, ok := remote.Owner.(*router.Router); ok && r == b {
			return ifc.Link
		}
	}
	return nil
}

// asNodes returns the AS's routers as fabric nodes (churn scopes).
func asNodes(as *ASInfo) []netsim.Node {
	routers := as.Routers()
	out := make([]netsim.Node, len(routers))
	for i, r := range routers {
		out[i] = r
	}
	return out
}
