package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"wormhole/internal/bgp"
	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
)

// The lazy stub fabric. At the Giga rung (~10⁶ routers, ~4·10⁵ stub
// ASes) even the streamed builder's per-stub cost — routers, tables,
// subnets, IGP convergence, BGP attachment — dominates build time and
// memory, while a sampled campaign only ever enters a few thousand of
// those stubs. With Params.LazyStubs the hierarchical builder records one
// compact descriptor per stub (its rng seed, provider attachment, and
// router count, all drawn from the build rng up front) and defers
// construction to first touch:
//
//   - a probe toward an address in the stub's /20 — the prober calls
//     netsim.FaultIn before a trace's first packet, which lands in
//     ensureStub via the hook installed on the fabric;
//   - a ground-truth resolution (Resolve/Owner) of such an address.
//
// Materialization replays the exact construction the eager build would
// have run, from a rand.Rand seeded with the descriptor's seed, so the
// resident part of a lazy world is byte-identical to the same region of
// the eager world — the fault-in equivalence goldens pin this.
//
// Descriptors and the block index are immutable after Build and shared by
// reference across snapshot replicas; only the resident bitset (and the
// stubs it marks) are copied, so Snapshot() stays proportional to the
// resident set, not the universe. Replicas fault stubs in independently:
// their node indices for lazy stubs diverge across fabrics, which is safe
// because churn scopes and shared-table eviction bitmaps only ever name
// core nodes (BuildChurnPlan skips stubs), and the shared address index
// never contains lazy records.

// stubDesc is the compact build-time plan of one stub AS: everything the
// eager build would have decided from the main rng, captured so
// construction can replay later from the stub's private seed.
type stubDesc struct {
	// seed drives every construction-time draw (personalities, wiring
	// delays, border picks) via a transient rand.Rand.
	seed int64
	// asIndex is the stub's ASInfo shell in Internet.ASes (created at
	// plan time so AS numbering and indexing are construction-order
	// independent).
	asIndex int32
	// prov holds the AS indices of the stub's 1-2 provider transits.
	prov  [2]int32
	nProv int32
	// nCore is the stub's router count, drawn from the build rng at plan
	// time so the universe size is known without construction.
	nCore int32
	// vp is the vantage-point slot attached to this stub, or -1. VP stubs
	// are always materialized at Build.
	vp int32
}

// stubSpan maps a /20 block start to its stub, sorted by start for
// binary search. Blocks are disjoint and never contain core addresses
// (transit loopbacks live in the reserved top /20 of each /11).
type stubSpan struct {
	start netaddr.Addr
	si    int32
}

// stubBlockSize is the address span of a stub aggregate (a /20).
const stubBlockSize = 1 << 12

// lazyState is a hierarchical world's stub-universe bookkeeping. descs
// and spans are immutable after Build and shared across replicas; the
// rest is per-fabric.
type lazyState struct {
	descs []stubDesc
	spans []stubSpan
	// deferred is Params.LazyStubs: construction outlives Build. Eager
	// hierarchical worlds keep descs too (the streaming target scheduler
	// enumerates the universe from them) with every stub resident.
	deferred bool
	// sealed flips when Build finishes: from then on register() routes
	// new address records into the materializing stub's lazyRecs instead
	// of the shared sorted index.
	sealed bool
	// recSink, during a materialization, points at the stub's lazyRecs.
	recSink *[]addrRec

	resident        bitset
	residentStubs   int
	residentRouters int
	coreRouters     int
	stubRouters     int

	faultIns  int
	faultInNS int64
}

type bitset []uint64

func (b bitset) get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }

// LazyStats reports a fabric's resident-set accounting. On eager worlds
// Resident == Total and FaultIns is zero.
type LazyStats struct {
	// Resident and Total count routers (constructed vs universe).
	Resident, Total int
	// ResidentStubs and TotalStubs count stub ASes.
	ResidentStubs, TotalStubs int
	// FaultIns counts post-build materializations on this fabric;
	// FaultInNS their cumulative wall-clock cost.
	FaultIns  int
	FaultInNS int64
}

// LazyStats returns the fabric's resident-set accounting.
func (in *Internet) LazyStats() LazyStats {
	if lz := in.lazy; lz != nil {
		return LazyStats{
			Resident:      lz.residentRouters,
			Total:         lz.coreRouters + lz.stubRouters,
			ResidentStubs: lz.residentStubs,
			TotalStubs:    len(lz.descs),
			FaultIns:      lz.faultIns,
			FaultInNS:     lz.faultInNS,
		}
	}
	n := in.TotalRouters()
	return LazyStats{Resident: n, Total: n}
}

// TotalRouters counts the whole universe — including stubs that have not
// been materialized yet.
func (in *Internet) TotalRouters() int {
	if lz := in.lazy; lz != nil {
		return lz.coreRouters + lz.stubRouters
	}
	n := 0
	for _, as := range in.ASes {
		n += len(as.Core) + len(as.Edge)
	}
	return n
}

// stubByAddr finds the lazy stub whose /20 contains a, if any.
func (in *Internet) stubByAddr(a netaddr.Addr) (int32, bool) {
	lz := in.lazy
	if lz == nil {
		return 0, false
	}
	sp := lz.spans
	i := sort.Search(len(sp), func(i int) bool { return sp[i].start > a }) - 1
	if i < 0 || a-sp[i].start >= stubBlockSize {
		return 0, false
	}
	return sp[i].si, true
}

// faultInAddr is the netsim fault-in hook target: materialize the stub
// owning addr, if it exists and is not resident yet.
func (in *Internet) faultInAddr(a netaddr.Addr) {
	if si, ok := in.stubByAddr(a); ok {
		in.ensureStub(si)
	}
}

// ensureStub materializes stub si if it is not resident, inside a netsim
// fault-in bracket so the provider-side route installs neither flush the
// flow caches nor bump TopoGen (see netsim.BeginFaultIn for why that is
// sound).
func (in *Internet) ensureStub(si int32) {
	lz := in.lazy
	if lz == nil || lz.resident.get(int(si)) {
		return
	}
	start := time.Now()
	in.Net.BeginFaultIn()
	in.materializeStub(si)
	in.Net.EndFaultIn()
	in.markResident(si)
	lz.faultIns++
	lz.faultInNS += time.Since(start).Nanoseconds()
}

func (in *Internet) markResident(si int32) {
	lz := in.lazy
	lz.resident.set(int(si))
	lz.residentStubs++
	lz.residentRouters += int(lz.descs[si].nCore)
}

// materializeStub replays one stub's construction from its descriptor:
// routers and intra-AS wiring, provider cross-links, the VP when the
// stub holds a slot, IGP convergence, and BGP attachment — the exact
// sequence (and rng draws) the eager build runs for the same stub.
func (in *Internet) materializeStub(si int32) {
	lz := in.lazy
	d := &lz.descs[si]
	as := in.ASes[d.asIndex]
	p := in.params
	rng := rand.New(rand.NewSource(d.seed))

	if lz.sealed {
		lz.recSink = &as.lazyRecs
		defer func() { lz.recSink = nil }()
	}

	in.buildASRouters(rng, p, as, int(d.nCore), 0, Stub)

	links := make([]bgp.StubLink, 0, d.nProv)
	for k := int32(0); k < d.nProv; k++ {
		prov := in.ASes[d.prov[k]]
		s := in.connectASesOwned(rng, p, as, prov, bgp.ACustomerOfB, as)
		links = append(links, bgp.StubLink{S: s, Provider: &bgp.AS{
			Num:      prov.Num,
			Routers:  prov.Routers(),
			Prefixes: []netaddr.Prefix{prov.Aggregate},
			SPF:      prov.SPF(),
		}})
	}
	if d.vp >= 0 {
		in.attachVP(rng, p, as, int(d.vp))
	}

	dom := &igp.Domain{Routers: as.Routers()}
	spf, err := dom.Compute()
	if err != nil {
		panic(fmt.Sprintf("gen: AS%d fault-in SPF: %v", as.Num, err))
	}
	bgp.AttachStub(&bgp.AS{
		Num:      as.Num,
		Routers:  as.Routers(),
		Prefixes: []netaddr.Prefix{as.Aggregate},
		SPF:      spf,
	}, links)
	as.spf = nil
	as.spfMode = spfRecompute
}

// materializeAll faults in every remaining stub (full-enumeration paths
// like RouterAddrs need the universe constructed).
func (in *Internet) materializeAll() {
	lz := in.lazy
	if lz == nil || lz.residentStubs == len(lz.descs) {
		return
	}
	for si := range lz.descs {
		if !lz.resident.get(si) {
			in.ensureStub(int32(si))
		}
	}
}

// FaultInSample materializes up to n not-yet-resident stubs in stub
// order through the regular fault-in path and returns how many it
// touched. The bench harness uses it to time materialization cost.
func (in *Internet) FaultInSample(n int) int {
	lz := in.lazy
	if lz == nil || !lz.deferred {
		return 0
	}
	c := 0
	for si := range lz.descs {
		if c >= n {
			break
		}
		if !lz.resident.get(si) {
			in.ensureStub(int32(si))
			c++
		}
	}
	return c
}

// anchorOf is the deterministic probe anchor of stub si: the first
// loopback its first router will hold (top-256 allocation, first draw) —
// enumerable without materializing anything.
func (in *Internet) anchorOf(si int32) netaddr.Addr {
	agg := in.ASes[in.lazy.descs[si].asIndex].Aggregate
	return agg.Addr() + netaddr.Addr(stubBlockSize-256+1)
}

// ProbeSpace enumerates the campaign-probeable universe without
// materializing it: every core-AS router loopback, then one anchor
// address per stub (its first router's first loopback). The enumeration
// is identical for the eager and lazy builds of the same Params — core
// ASes are always eager, and anchors derive from the address plan alone —
// so streaming campaigns on either world draw the same targets.
func (in *Internet) ProbeSpace() *TargetSpace {
	t := &TargetSpace{in: in}
	if lz := in.lazy; lz != nil {
		for _, as := range in.ASes {
			if as.Profile.Tier == Stub {
				continue
			}
			for _, r := range as.Routers() {
				if lo := r.Loopback(); lo != nil {
					t.addrs = append(t.addrs, lo.Addr)
					t.prefixes = append(t.prefixes, as.Aggregate)
				}
			}
		}
		t.stubs = len(lz.descs)
		return t
	}
	// Flat world: the full registered address set, AS aggregate as the
	// budget prefix.
	for _, as := range in.ASes {
		for _, r := range as.Routers() {
			if lo := r.Loopback(); lo != nil {
				t.addrs = append(t.addrs, lo.Addr)
				t.prefixes = append(t.prefixes, as.Aggregate)
			}
			for _, ifc := range r.Ifaces() {
				t.addrs = append(t.addrs, ifc.Addr)
				t.prefixes = append(t.prefixes, as.Aggregate)
			}
		}
	}
	return t
}

// TargetSpace is an indexable view of the probeable universe: |addrs|
// eager addresses followed by one anchor per stub descriptor. The
// campaign's streaming scheduler permutes indices over it.
type TargetSpace struct {
	in       *Internet
	addrs    []netaddr.Addr
	prefixes []netaddr.Prefix
	stubs    int
}

// Len is the universe size.
func (t *TargetSpace) Len() int { return len(t.addrs) + t.stubs }

// Addr returns the i-th target address.
func (t *TargetSpace) Addr(i int) netaddr.Addr {
	if i < len(t.addrs) {
		return t.addrs[i]
	}
	return t.in.anchorOf(int32(i - len(t.addrs)))
}

// Prefix returns the budget prefix of the i-th target (its AS
// aggregate).
func (t *TargetSpace) Prefix(i int) netaddr.Prefix {
	if i < len(t.prefixes) {
		return t.prefixes[i]
	}
	return t.in.ASes[t.in.lazy.descs[i-len(t.addrs)].asIndex].Aggregate
}
