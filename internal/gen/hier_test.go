package gen

import (
	"testing"
)

// hierParams forces the streamed hierarchical builder at a size small
// enough for exhaustive trace comparison; auto-selection only kicks in
// above flatASLimit.
func hierParams(seed int64) Params {
	p := DefaultParams(seed)
	p.Hierarchical = true
	p.NumTier1 = 2
	p.NumTransit = 3
	p.NumStub = 12
	p.NumVPs = 4
	return p
}

func TestHierBuildSmall(t *testing.T) {
	in, err := Build(hierParams(31))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.ASes) != 17 {
		t.Fatalf("AS count = %d", len(in.ASes))
	}
	if len(in.VPs) != 4 {
		t.Fatalf("VP count = %d", len(in.VPs))
	}
	for _, as := range in.ASes {
		if len(as.Routers()) == 0 {
			t.Errorf("%s has no routers", as.Name)
		}
		// SPF() must resolve for every AS: eagerly for the core, via the
		// lazy recompute path for streamed stubs.
		res := as.SPF()
		if res == nil {
			t.Errorf("%s has no SPF", as.Name)
			continue
		}
		if _, ok := res.NextHops[as.Routers()[0]]; !ok {
			t.Errorf("%s: SPF does not cover its own routers", as.Name)
		}
		if as.Profile.Tier == Stub && as.Profile.MPLS {
			t.Errorf("%s: stub with MPLS", as.Name)
		}
	}
}

func TestHierDeterministicGeneration(t *testing.T) {
	a, err := Build(hierParams(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(hierParams(3))
	if err != nil {
		t.Fatal(err)
	}
	aa, bb := a.RouterAddrs(), b.RouterAddrs()
	if len(aa) != len(bb) {
		t.Fatalf("addr counts differ: %d vs %d", len(aa), len(bb))
	}
	for i := range aa {
		if aa[i] != bb[i] {
			t.Fatalf("addr %d differs: %s vs %s", i, aa[i], bb[i])
		}
	}
	for i := range a.ASes {
		if a.ASes[i].Profile != b.ASes[i].Profile || a.ASes[i].Aggregate != b.ASes[i].Aggregate {
			t.Fatalf("AS %d differs", i)
		}
	}
}

// TestHierReachability is the end-to-end contract: every VP reaches
// loopbacks across the whole hierarchy — tier-1s, transits, and stubs
// homed on other transits — through default routes, provider customer
// routes, and the core's valley-free tables.
func TestHierReachability(t *testing.T) {
	in, err := Build(hierParams(7))
	if err != nil {
		t.Fatal(err)
	}
	reached, total := 0, 0
	for _, vp := range in.VPs {
		for _, as := range in.ASes {
			lo := as.Routers()[0].Loopback()
			if lo == nil {
				continue
			}
			total++
			if _, ok := vp.Prober.Ping(lo.Addr, 64); ok {
				reached++
			}
		}
	}
	if total == 0 || reached < total*9/10 {
		t.Fatalf("reachability %d/%d", reached, total)
	}
}

// TestHierSnapshotEquivalence extends the snapshot contract to the
// streamed builder: replicas must reproduce the source's traceroute
// behaviour byte-for-byte, including stubs whose SPF is in each of the
// three modes (eager, lazily recomputable, remapped from a materialized
// source result).
func TestHierSnapshotEquivalence(t *testing.T) {
	in, err := Build(hierParams(5))
	if err != nil {
		t.Fatal(err)
	}
	// Materialize one stub SPF before the snapshot so the remap path is
	// exercised alongside the recompute path.
	var stub *ASInfo
	for _, as := range in.ASes {
		if as.Profile.Tier == Stub {
			stub = as
			break
		}
	}
	if stub == nil {
		t.Fatal("no stub AS")
	}
	if stub.SPF() == nil {
		t.Fatal("stub SPF recompute failed")
	}

	snap, err := in.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := dumpTraces(in)
	if got := dumpTraces(snap); got != want {
		t.Errorf("snapshot traces diverge from original:\n%s", firstTraceDiff(want, got))
	}

	// The remapped SPF must reference the snapshot's routers, not the
	// source's.
	snapStub := snap.ASByNum(stub.Num)
	res := snapStub.SPF()
	if res == nil {
		t.Fatal("snapshot stub SPF missing")
	}
	if _, ok := res.NextHops[snapStub.Routers()[0]]; !ok {
		t.Error("snapshot stub SPF does not cover the snapshot's routers")
	}
	if _, ok := res.NextHops[stub.Routers()[0]]; ok && snapStub.Routers()[0] != stub.Routers()[0] {
		t.Error("snapshot stub SPF still references source routers")
	}

	// Independence: mutating the original must not change the snapshot.
	for _, as := range in.ASes {
		for _, r := range as.Routers() {
			r.ClearMPLS()
		}
	}
	if got := dumpTraces(snap); got != want {
		t.Errorf("mutating the original changed the snapshot:\n%s", firstTraceDiff(want, got))
	}
}

func TestHierParamsRoundTrip(t *testing.T) {
	p := hierParams(9)
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if in.Params() != p {
		t.Fatal("Params() does not round-trip the hierarchical build parameters")
	}
	replica, err := in.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if replica.Net == in.Net {
		t.Fatal("Clone returned a shared fabric")
	}
	aa, bb := in.RouterAddrs(), replica.RouterAddrs()
	if len(aa) != len(bb) {
		t.Fatalf("addr counts differ: %d vs %d", len(aa), len(bb))
	}
	for i := range aa {
		if aa[i] != bb[i] {
			t.Fatalf("addr %d differs: %s vs %s", i, aa[i], bb[i])
		}
	}
}

func TestHierRejectsInBand(t *testing.T) {
	p := hierParams(11)
	p.InBandControlPlane = true
	if _, err := Build(p); err == nil {
		t.Fatal("hierarchical build accepted InBandControlPlane")
	}
}

// TestHierGroundTruth pins the shared address index: Resolve and Owner
// must answer for streamed stubs exactly as they do for core ASes.
func TestHierGroundTruth(t *testing.T) {
	in, err := Build(hierParams(13))
	if err != nil {
		t.Fatal(err)
	}
	for _, as := range in.ASes {
		r := as.Routers()[0]
		lo := r.Loopback()
		if lo == nil {
			continue
		}
		name, asn, ok := in.Resolve(lo.Addr)
		if !ok || name != r.Name() || asn != as.Num {
			t.Errorf("Resolve(%s) = %s,%d,%v, want %s,%d", lo.Addr, name, asn, ok, r.Name(), as.Num)
		}
		info, ok := in.Owner(lo.Addr)
		if !ok || info.Router != r || info.AS != as {
			t.Errorf("Owner(%s) mismatched", lo.Addr)
		}
	}
	if _, _, ok := in.Resolve(0xdeadbeef); ok {
		t.Error("resolved a nonexistent address")
	}
}
